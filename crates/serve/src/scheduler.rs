//! The bounded worker-pool scheduler.
//!
//! Jobs are submitted into three FIFO **priority lanes** (`high` /
//! `normal` / `low`); a fixed pool of worker threads drains `high`
//! before `normal` before `low`, FIFO within each lane. Every job walks
//! the lifecycle `Queued → Running → Done | Failed | TimedOut`, with
//! `Cancelled` reachable only from `Queued` (a running simulation is
//! never torn down mid-flight — its result is still deterministic and
//! cacheable).
//!
//! **Singleflight.** Submissions are collapsed by [`JobKey`]: while a
//! key is queued, running, or already done, further submissions of the
//! same key return the existing entry instead of enqueueing a second
//! execution (`deduped` in the submit outcome; a per-entry counter
//! records how many submissions collapsed). A `Failed`, `Cancelled`, or
//! `TimedOut` key is re-armed by the next submission — and so is a
//! `Done` key whose stored result no longer verifies (evicted or
//! corrupted since), which is how a damaged cache entry self-heals on
//! resubmit instead of dedup-ing forever onto a phantom result.
//!
//! **Retry & watchdog.** A failed execution re-enters the tail of its
//! lane while the entry's attempt count is below
//! [`SchedulerConfig::max_attempts`] — retry ordering is a pure
//! function of attempt counts and lane FIFO order, never of wall-clock
//! (rule D2 stays confined to telemetry). With
//! [`SchedulerConfig::job_timeout_ms`] set, a watchdog thread marks
//! runaway executions `TimedOut` and re-arms the key; the straggler's
//! eventual completion is discarded by a per-entry generation check
//! (its published result, if any, stays valid in the store).
//!
//! **Cache-first execution.** A worker first probes the
//! [`ResultStore`]; a verified hit completes the job without touching
//! the backend, a miss executes via [`JobBackend::execute`] and
//! publishes the result atomically. Combined with singleflight this
//! gives the service the serving-stack property: N concurrent identical
//! requests cost one simulation, and repeats across process lifetimes
//! cost none. With [`SchedulerConfig::cas_max_bytes`] set, each
//! publication is followed by a store GC pass so the CAS stays bounded.
//!
//! **Admission gate.** With [`SchedulerConfig::mem_budget_bytes`] set,
//! a queued job is only dispatched while the estimated bytes of
//! running jobs ([`JobBackend::admission_bytes`]) plus its own fit the
//! budget; oversized candidates stay queued (`admission_deferred` in
//! stats) until capacity frees. A job is always admitted when nothing
//! is running, so progress is guaranteed and a single over-budget job
//! degrades to serial execution instead of starving.
//!
//! **Fault injection.** With [`SchedulerConfig::faults`] attached, the
//! execute path consults the [`FaultInjector`] before each fresh
//! execution: injected panics unwind through the *real*
//! `catch_unwind` containment, injected errors walk the real
//! failed-job path, injected delays exercise the watchdog.
//!
//! Wall-clock here (queue wait, execution time, watchdog deadlines) is
//! scheduling telemetry: it lands only in CAS manifests and stats
//! snapshots, both of which exempt those fields from byte-stability,
//! and never in result payloads.

use crate::fault::{ExecFault, FaultInjector};
use crate::job::{canonical, Job, JobKey, Priority};
use crate::stats::{ExperimentStat, Stats, StoreStats};
use crate::store::{manifest_for, FingerprintEntry, ResultStore};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one executed job produced: named result payloads, verbatim
/// bytes. Names become files both in the CAS entry and in whatever
/// results directory a client materializes them into.
#[derive(Debug, Clone, Default)]
pub struct JobOutput {
    /// `(file name, bytes)` per payload.
    pub files: Vec<(String, Vec<u8>)>,
}

/// What the scheduler delegates: resolving a job's graph inputs and
/// actually running it. Implemented by `cxlg-bench` over the experiment
/// registry; tests use stubs.
pub trait JobBackend: Send + Sync {
    /// `(dataset label, Csr::fingerprint)` for every graph the job
    /// consumes — the input half of the job key. Called at submit time;
    /// implementations should memoize (a fingerprint is a pure function
    /// of the dataset label).
    fn fingerprints(&self, job: &Job) -> Result<Vec<(String, u64)>, String>;

    /// Execute the job, returning its result payloads. Must be
    /// deterministic for a fixed job: byte-identical payloads on every
    /// call — the property that makes the result store sound.
    fn execute(&self, key: &JobKey, job: &Job) -> Result<JobOutput, String>;

    /// Estimated peak working-set bytes of executing this job, consumed
    /// by the admission gate ([`SchedulerConfig::mem_budget_bytes`]).
    /// The default (0) admits unconditionally.
    fn admission_bytes(&self, _job: &Job) -> u64 {
        0
    }
}

/// Scheduler construction knobs. [`Default`] gives one worker, no
/// retries, no timeout, no budgets, no faults — the PR 8 behaviour.
#[derive(Clone, Default)]
pub struct SchedulerConfig {
    /// Worker pool size (clamped to ≥ 1).
    pub workers: usize,
    /// Execution attempts before a job is finally `Failed` (clamped to
    /// ≥ 1). Attempt counts — not wall-clock — order retries.
    pub max_attempts: u64,
    /// Per-job execution timeout: a watchdog marks jobs running longer
    /// than this `TimedOut` and re-arms the key. `None` disables.
    pub job_timeout_ms: Option<u64>,
    /// Admission budget: estimated bytes of concurrently running jobs
    /// are kept at or below this. `None` admits everything.
    pub mem_budget_bytes: Option<u64>,
    /// Store byte budget: every publication triggers
    /// [`ResultStore::gc`] down to this size. `None` disables.
    pub cas_max_bytes: Option<u64>,
    /// Fault injector for the execute path (chaos testing). Attach the
    /// same injector to the store for publish-path faults.
    pub faults: Option<Arc<FaultInjector>>,
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// In a lane, not yet picked up.
    Queued,
    /// A worker is executing (or replaying) it.
    Running,
    /// Finished successfully; results are in the store.
    Done,
    /// The backend reported an error (or panicked) on every attempt.
    Failed,
    /// Pulled from the queue before a worker picked it up.
    Cancelled,
    /// Ran past the per-job timeout; the key is re-armed for resubmit.
    TimedOut,
}

impl JobStatus {
    /// Wire name (`queued` / `running` / `done` / `failed` /
    /// `cancelled` / `timed_out`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::TimedOut => "timed_out",
        }
    }

    /// Whether the lifecycle can no longer advance (without a re-arm).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled | JobStatus::TimedOut
        )
    }
}

/// Point-in-time view of one job, as returned by `status` / `wait`.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job's key.
    pub key: JobKey,
    /// The submitted job.
    pub job: Job,
    /// Lane it was submitted into.
    pub priority: Priority,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Whether completion came from the result store.
    pub cache_hit: bool,
    /// Execution attempts so far (1 on the clean path; >1 after
    /// retries).
    pub attempts: u64,
    /// Execution wall-clock (ms) — 0 until terminal; telemetry.
    pub wall_ms: f64,
    /// Time spent queued before a worker picked the job up (ms) —
    /// telemetry.
    pub queue_wait_ms: f64,
    /// How many submissions collapsed onto this entry after the first.
    pub dedup_hits: u64,
    /// Backend error for `Failed` jobs (and the last attempt's error
    /// while retries are still pending).
    pub error: Option<String>,
    /// Result payload names (CAS entry contents) once `Done`.
    pub files: Vec<String>,
}

/// Outcome of a submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Key naming the (possibly pre-existing) entry.
    pub key: JobKey,
    /// `true` when singleflight collapsed this submission onto an
    /// existing queued/running/done entry.
    pub deduped: bool,
}

/// Outcome of a bounded wait ([`Scheduler::wait_timeout`]).
#[derive(Debug, Clone)]
pub enum WaitOutcome {
    /// The key is not (or no longer) known to the scheduler — also the
    /// escape hatch when an entry is pruned mid-wait.
    Unknown,
    /// The job reached a terminal state.
    Terminal(JobSnapshot),
    /// The timeout elapsed first; the job is still in flight.
    Pending(JobSnapshot),
}

struct Entry {
    job: Job,
    priority: Priority,
    status: JobStatus,
    cache_hit: bool,
    attempts: u64,
    /// Bumped on every re-arm and timeout; a worker's completion is
    /// discarded when its pickup generation no longer matches.
    generation: u64,
    wall_ms: f64,
    queue_wait_ms: f64,
    dedup_hits: u64,
    error: Option<String>,
    files: Vec<String>,
    fingerprints: Vec<(String, u64)>,
    admission_bytes: u64,
    /// Whether the admission gate has deferred this entry at least once
    /// since it was (re-)queued — dedups the `admission_deferred`
    /// counter across repeated scans.
    deferred: bool,
    queued_at: Instant,
    started_at: Option<Instant>,
}

impl Entry {
    fn snapshot(&self, key: &JobKey) -> JobSnapshot {
        JobSnapshot {
            key: key.clone(),
            job: self.job.clone(),
            priority: self.priority,
            status: self.status,
            cache_hit: self.cache_hit,
            attempts: self.attempts,
            wall_ms: self.wall_ms,
            queue_wait_ms: self.queue_wait_ms,
            dedup_hits: self.dedup_hits,
            error: self.error.clone(),
            files: self.files.clone(),
        }
    }
}

#[derive(Default)]
struct Counters {
    completed: u64,
    failed: u64,
    cancelled: u64,
    deduped: u64,
    cache_hits: u64,
    cache_misses: u64,
    retries: u64,
    timed_out: u64,
    admission_deferred: u64,
}

struct State {
    lanes: [VecDeque<JobKey>; 3],
    entries: BTreeMap<JobKey, Entry>,
    running: usize,
    /// Sum of `admission_bytes` over currently running jobs.
    running_bytes: u64,
    shutdown: bool,
    counters: Counters,
    per_experiment: BTreeMap<String, (u64, f64)>,
}

struct Inner {
    backend: Arc<dyn JobBackend>,
    store: ResultStore,
    cfg: SchedulerConfig,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The bounded worker-pool scheduler over one result store and one
/// backend.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawn a scheduler with `workers` pool threads (clamped to ≥ 1)
    /// and default behaviour (no retries/timeout/budgets/faults).
    pub fn new(store: ResultStore, backend: Arc<dyn JobBackend>, workers: usize) -> Arc<Self> {
        Self::with_config(
            store,
            backend,
            SchedulerConfig {
                workers,
                ..SchedulerConfig::default()
            },
        )
    }

    /// Spawn a scheduler with explicit [`SchedulerConfig`] knobs.
    pub fn with_config(
        store: ResultStore,
        backend: Arc<dyn JobBackend>,
        cfg: SchedulerConfig,
    ) -> Arc<Self> {
        let workers = cfg.workers.max(1);
        let timeout = cfg.job_timeout_ms.map(Duration::from_millis);
        let inner = Arc::new(Inner {
            backend,
            store,
            cfg,
            state: Mutex::new(State {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                entries: BTreeMap::new(),
                running: 0,
                running_bytes: 0,
                shutdown: false,
                counters: Counters::default(),
                per_experiment: BTreeMap::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles: Vec<std::thread::JoinHandle<()>> = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cxlg-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn scheduler worker")
            })
            .collect();
        if let Some(timeout) = timeout {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name("cxlg-serve-watchdog".to_string())
                    .spawn(move || watchdog_loop(&inner, timeout))
                    .expect("spawn scheduler watchdog"),
            );
        }
        Arc::new(Scheduler {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// The scheduler's result store.
    pub fn store(&self) -> &ResultStore {
        &self.inner.store
    }

    /// Submit a job. Resolves the job's graph fingerprints through the
    /// backend (errors surface here, before anything is enqueued),
    /// derives the key, and either enqueues a new entry or collapses
    /// onto an existing one (singleflight).
    pub fn submit(&self, job: Job, priority: Priority) -> Result<SubmitOutcome, String> {
        let fingerprints = self.inner.backend.fingerprints(&job)?;
        let admission_bytes = self.inner.backend.admission_bytes(&job);
        let key = JobKey::derive(&job, &fingerprints);
        let mut st = self.inner.state.lock().unwrap();
        if st.shutdown {
            return Err("scheduler is shut down".to_string());
        }
        if let Some(e) = st.entries.get_mut(&key) {
            let mut rearm = matches!(
                e.status,
                JobStatus::Failed | JobStatus::Cancelled | JobStatus::TimedOut
            );
            if e.status == JobStatus::Done && self.inner.store.probe(&key).is_none() {
                // The cached result vanished (evicted, corrupted and
                // quarantined, store wiped): a Done entry must not
                // dedup onto a phantom — re-execute to self-heal.
                rearm = true;
            }
            if !rearm {
                e.dedup_hits += 1;
                st.counters.deduped += 1;
                return Ok(SubmitOutcome { key, deduped: true });
            }
            // Re-arm the entry for a fresh execution round.
            e.status = JobStatus::Queued;
            e.priority = priority;
            e.cache_hit = false;
            e.attempts = 0;
            e.generation += 1;
            e.wall_ms = 0.0;
            e.queue_wait_ms = 0.0;
            e.error = None;
            e.files.clear();
            e.fingerprints = fingerprints;
            e.admission_bytes = admission_bytes;
            e.deferred = false;
            e.queued_at = Instant::now();
            e.started_at = None;
        } else {
            st.entries.insert(
                key.clone(),
                Entry {
                    job,
                    priority,
                    status: JobStatus::Queued,
                    cache_hit: false,
                    attempts: 0,
                    generation: 0,
                    wall_ms: 0.0,
                    queue_wait_ms: 0.0,
                    dedup_hits: 0,
                    error: None,
                    files: Vec::new(),
                    fingerprints,
                    admission_bytes,
                    deferred: false,
                    queued_at: Instant::now(),
                    started_at: None,
                },
            );
        }
        st.lanes[priority.lane()].push_back(key.clone());
        drop(st);
        self.inner.work_cv.notify_one();
        Ok(SubmitOutcome { key, deduped: false })
    }

    /// Current view of a job, or `None` for an unknown key.
    pub fn status(&self, key: &JobKey) -> Option<JobSnapshot> {
        let st = self.inner.state.lock().unwrap();
        st.entries.get(key).map(|e| e.snapshot(key))
    }

    /// Block until the job reaches a terminal state; `None` for an
    /// unknown (or pruned-mid-wait) key.
    pub fn wait(&self, key: &JobKey) -> Option<JobSnapshot> {
        match self.wait_timeout(key, None) {
            WaitOutcome::Terminal(snap) => Some(snap),
            WaitOutcome::Unknown | WaitOutcome::Pending(_) => None,
        }
    }

    /// Block until the job reaches a terminal state, the key
    /// disappears, or `timeout` elapses (`None` waits forever). Unlike
    /// the PR 8 `wait`, a waiter can no longer hang on a key whose
    /// entry is pruned or whose terminal state it missed: pruning
    /// notifies the condvar and the `Unknown` arm returns.
    pub fn wait_timeout(&self, key: &JobKey, timeout: Option<Duration>) -> WaitOutcome {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.entries.get(key) {
                None => return WaitOutcome::Unknown,
                Some(e) if e.status.is_terminal() => {
                    return WaitOutcome::Terminal(e.snapshot(key))
                }
                Some(e) => {
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            return WaitOutcome::Pending(e.snapshot(key));
                        }
                    }
                }
            }
            st = match deadline {
                None => self.inner.done_cv.wait(st).unwrap(),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    self.inner.done_cv.wait_timeout(st, remaining).unwrap().0
                }
            };
        }
    }

    /// Cancel a **queued** job. Running or terminal jobs are left alone
    /// (`false`): a running simulation completes and its result is
    /// cached — cancellation would only waste the work.
    pub fn cancel(&self, key: &JobKey) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        let Some(e) = st.entries.get_mut(key) else {
            return false;
        };
        if e.status != JobStatus::Queued {
            return false;
        }
        e.status = JobStatus::Cancelled;
        st.counters.cancelled += 1;
        drop(st);
        self.inner.done_cv.notify_all();
        true
    }

    /// Drop every terminal entry from the scheduler's table (the CAS
    /// keeps the results; only in-memory bookkeeping goes). Waiters
    /// blocked on a pruned key observe `Unknown` instead of hanging.
    /// Returns how many entries were pruned.
    pub fn prune_terminal(&self) -> usize {
        let mut st = self.inner.state.lock().unwrap();
        let doomed: Vec<JobKey> = st
            .entries
            .iter()
            .filter(|(_, e)| e.status.is_terminal())
            .map(|(k, _)| k.clone())
            .collect();
        for key in &doomed {
            st.entries.remove(key);
        }
        drop(st);
        self.inner.done_cv.notify_all();
        doomed.len()
    }

    /// Block until every queued job has been picked up and every
    /// running job has finished.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let queued_live = st.lanes.iter().flatten().any(|k| {
                st.entries
                    .get(k)
                    .is_some_and(|e| e.status == JobStatus::Queued)
            });
            if !queued_live && st.running == 0 {
                return;
            }
            st = self.inner.done_cv.wait(st).unwrap();
        }
    }

    /// Service statistics snapshot (byte-stable modulo the wall-clock
    /// and RSS fields; see [`crate::stats`]).
    pub fn stats(&self) -> Stats {
        let store_counters = self.inner.store.counters();
        let store_entries = self.inner.store.len() as u64;
        let st = self.inner.state.lock().unwrap();
        let mut queue_depth = [0usize; 3];
        for (lane, depth) in queue_depth.iter_mut().enumerate() {
            *depth = st.lanes[lane]
                .iter()
                .filter(|k| {
                    st.entries
                        .get(*k)
                        .is_some_and(|e| e.status == JobStatus::Queued)
                })
                .count();
        }
        Stats {
            queue_depth,
            running: st.running,
            completed: st.counters.completed,
            failed: st.counters.failed,
            cancelled: st.counters.cancelled,
            deduped: st.counters.deduped,
            cache_hits: st.counters.cache_hits,
            cache_misses: st.counters.cache_misses,
            retries: st.counters.retries,
            timed_out: st.counters.timed_out,
            admission_deferred: st.counters.admission_deferred,
            faults_injected: self
                .inner
                .cfg
                .faults
                .as_ref()
                .map_or(0, |f| f.fired_count()),
            store: StoreStats {
                staging_reaped: store_counters.staging_reaped,
                quarantined: store_counters.quarantined,
                evicted: store_counters.evicted,
                entries: store_entries,
            },
            rss_now_kb: cxlg_core::mem::current_rss_kb(),
            rss_peak_kb: cxlg_core::mem::peak_rss_kb(),
            per_experiment: st
                .per_experiment
                .iter()
                .map(|(name, (jobs, wall_ms))| ExperimentStat {
                    experiment: name.clone(),
                    jobs: *jobs,
                    cumulative_wall_ms: *wall_ms,
                })
                .collect(),
        }
    }

    /// Stop the pool: cancel everything still queued, let running jobs
    /// finish, and join the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            if !st.shutdown {
                st.shutdown = true;
                let keys: Vec<JobKey> = st.lanes.iter().flatten().cloned().collect();
                for k in keys {
                    if let Some(e) = st.entries.get_mut(&k) {
                        if e.status == JobStatus::Queued {
                            e.status = JobStatus::Cancelled;
                            st.counters.cancelled += 1;
                        }
                    }
                }
                for lane in &mut st.lanes {
                    lane.clear();
                }
            }
        }
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(picked) = next_job(inner) {
        run_one(inner, &picked);
    }
}

/// Everything a worker needs to execute one pickup and report it back.
struct Picked {
    key: JobKey,
    job: Job,
    fingerprints: Vec<(String, u64)>,
    generation: u64,
    admission_bytes: u64,
}

/// Claim the next admissible queued job, preferring lower lane indices
/// and FIFO order within a lane; park on the work condvar while nothing
/// is claimable. `None` on shutdown.
///
/// With a memory budget configured, a candidate whose
/// `admission_bytes` would push the running estimate past the budget
/// is left queued (deferred) and the scan moves on — unless nothing is
/// running, in which case it is admitted unconditionally so one
/// over-budget job degrades to serial execution instead of deadlock.
fn next_job(inner: &Inner) -> Option<Picked> {
    let mut st = inner.state.lock().unwrap();
    loop {
        if st.shutdown {
            return None;
        }
        let mut newly_deferred = 0u64;
        let mut claimed: Option<Picked> = None;
        'scan: for lane in 0..3 {
            let mut idx = 0;
            while idx < st.lanes[lane].len() {
                let key = st.lanes[lane][idx].clone();
                let live_queued = st
                    .entries
                    .get(&key)
                    .is_some_and(|e| e.status == JobStatus::Queued);
                if !live_queued {
                    // Cancelled while queued (tombstone), or a stale
                    // lane entry from a re-armed key: drop it.
                    st.lanes[lane].remove(idx);
                    continue;
                }
                let admit = {
                    let e = &st.entries[&key];
                    match inner.cfg.mem_budget_bytes {
                        None => true,
                        Some(budget) => {
                            st.running == 0
                                || st.running_bytes.saturating_add(e.admission_bytes) <= budget
                        }
                    }
                };
                if !admit {
                    let e = st.entries.get_mut(&key).unwrap();
                    if !e.deferred {
                        e.deferred = true;
                        newly_deferred += 1;
                    }
                    idx += 1;
                    continue;
                }
                st.lanes[lane].remove(idx);
                let e = st.entries.get_mut(&key).unwrap();
                e.status = JobStatus::Running;
                e.attempts += 1;
                e.deferred = false;
                e.queue_wait_ms = e.queued_at.elapsed().as_secs_f64() * 1e3;
                e.started_at = Some(Instant::now());
                claimed = Some(Picked {
                    key: key.clone(),
                    job: e.job.clone(),
                    fingerprints: e.fingerprints.clone(),
                    generation: e.generation,
                    admission_bytes: e.admission_bytes,
                });
                break 'scan;
            }
        }
        st.counters.admission_deferred += newly_deferred;
        match claimed {
            Some(picked) => {
                st.running += 1;
                st.running_bytes = st.running_bytes.saturating_add(picked.admission_bytes);
                return Some(picked);
            }
            // Nothing claimable (lanes empty, or everything deferred):
            // completions notify the work condvar, so deferred work is
            // rescanned as soon as capacity frees.
            None => st = inner.work_cv.wait(st).unwrap(),
        }
    }
}

/// Mark running jobs that outlived `timeout` as `TimedOut` and re-arm
/// their keys (generation bump discards the straggler's completion).
fn watchdog_loop(inner: &Inner, timeout: Duration) {
    let poll = (timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
    let mut st = inner.state.lock().unwrap();
    loop {
        if st.shutdown {
            return;
        }
        let overdue: Vec<JobKey> = st
            .entries
            .iter()
            .filter(|(_, e)| {
                e.status == JobStatus::Running
                    && e.started_at.is_some_and(|s| s.elapsed() >= timeout)
            })
            .map(|(k, _)| k.clone())
            .collect();
        let fired = !overdue.is_empty();
        for key in overdue {
            let timed_out_ms = timeout.as_millis();
            if let Some(e) = st.entries.get_mut(&key) {
                e.status = JobStatus::TimedOut;
                e.error = Some(format!("execution exceeded {timed_out_ms} ms (watchdog)"));
                e.generation += 1;
                st.counters.timed_out += 1;
            }
        }
        if fired {
            inner.done_cv.notify_all();
        }
        let (guard, _) = inner.done_cv.wait_timeout(st, poll).unwrap();
        st = guard;
    }
}

/// Execute (or replay) one job and record its terminal state — or
/// re-queue it while attempts remain.
fn run_one(inner: &Inner, picked: &Picked) {
    let Picked {
        key,
        job,
        fingerprints,
        generation,
        admission_bytes,
    } = picked;
    let started = Instant::now();
    let (result, cache_hit) = match inner.store.probe(key) {
        Some(hit) => (
            Ok(hit.files.iter().map(|(name, _)| name.clone()).collect::<Vec<_>>()),
            true,
        ),
        None => {
            // Fresh execution. A panicking backend — real or injected —
            // fails the job, not the worker thread.
            let fault = inner
                .cfg
                .faults
                .as_ref()
                .map_or(ExecFault::None, |f| f.on_execute());
            let (outcome, span) = cxlg_core::mem::rss_span(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    match fault {
                        ExecFault::Panic => panic!("injected fault: worker panic"),
                        ExecFault::Error => {
                            return Err("injected fault: execute error".to_string())
                        }
                        ExecFault::DelayMs(ms) => {
                            std::thread::sleep(Duration::from_millis(ms))
                        }
                        ExecFault::None => {}
                    }
                    inner.backend.execute(key, job)
                }))
                .unwrap_or_else(|_| Err("backend panicked".to_string()))
            });
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            match outcome {
                Ok(output) => {
                    let mut manifest = manifest_for(
                        key,
                        canonical(job, fingerprints),
                        job.clone(),
                        fingerprints
                            .iter()
                            .map(|(spec, fp)| FingerprintEntry {
                                spec: spec.clone(),
                                fingerprint: *fp,
                            })
                            .collect(),
                    );
                    manifest.wall_ms = wall_ms;
                    manifest.rss_peak_kb = span.after_kb;
                    manifest.rss_delta_kb = span.delta_kb();
                    match inner.store.publish(manifest, &output.files) {
                        Ok(_) => {
                            if let Some(max) = inner.cfg.cas_max_bytes {
                                inner.store.gc(Some(max), None);
                            }
                            (
                                Ok(output.files.iter().map(|(n, _)| n.clone()).collect()),
                                false,
                            )
                        }
                        Err(e) => (Err(format!("result publication failed: {e}")), false),
                    }
                }
                Err(e) => (Err(e), false),
            }
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut st = inner.state.lock().unwrap();
    st.running -= 1;
    st.running_bytes = st.running_bytes.saturating_sub(*admission_bytes);
    let current_generation = st.entries.get(key).map(|e| e.generation);
    if current_generation == Some(*generation) {
        if cache_hit {
            st.counters.cache_hits += 1;
        } else {
            st.counters.cache_misses += 1;
        }
        let exp_stat = st.per_experiment.entry(job.experiment.clone()).or_insert((0, 0.0));
        exp_stat.0 += 1;
        exp_stat.1 += wall_ms;
        let max_attempts = inner.cfg.max_attempts.max(1);
        let mut requeue: Option<usize> = None;
        if let Some(e) = st.entries.get_mut(key) {
            e.cache_hit = cache_hit;
            e.wall_ms = wall_ms;
            match result {
                Ok(files) => {
                    e.status = JobStatus::Done;
                    e.files = files;
                }
                Err(msg) => {
                    e.error = Some(msg);
                    if e.attempts < max_attempts {
                        // Bounded retry: back into the tail of its lane.
                        // Ordering is attempt-count + FIFO, never clock.
                        e.status = JobStatus::Queued;
                        e.queued_at = Instant::now();
                        e.started_at = None;
                        requeue = Some(e.priority.lane());
                    } else {
                        e.status = JobStatus::Failed;
                    }
                }
            }
        }
        match requeue {
            Some(lane) => {
                st.counters.retries += 1;
                st.lanes[lane].push_back(key.clone());
            }
            None => match st.entries.get(key).map(|e| e.status) {
                Some(JobStatus::Done) => st.counters.completed += 1,
                Some(JobStatus::Failed) => st.counters.failed += 1,
                _ => {}
            },
        }
    }
    // else: the entry was timed out or re-armed while we ran — a
    // published result stays valid in the store; the bookkeeping
    // belongs to the new generation.
    drop(st);
    inner.work_cv.notify_all();
    inner.done_cv.notify_all();
}
