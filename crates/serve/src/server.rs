//! The Unix-socket front end: `cxlg serve --socket=PATH`.
//!
//! One listener thread accepts connections; each connection gets its
//! own handler thread speaking the newline-delimited JSON protocol
//! ([`crate::proto`]). Blocking ops (`wait`, waiting submits) park the
//! connection's thread on the scheduler's condvar, so slow jobs never
//! stall other clients. A `shutdown` request stops the accept loop
//! (unblocked by a self-connection), cancels everything still queued,
//! and joins the worker pool.

use crate::job::Job;
use crate::proto::{self, Request};
use crate::scheduler::{Scheduler, WaitOutcome};
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server-side defaults applied to submit requests that omit numeric
/// fields (the CLI seeds these from `CXLG_SCALE` / `CXLG_SEED` / the
/// pool size).
#[derive(Debug, Clone, Copy)]
pub struct SubmitDefaults {
    /// Default log2 vertex count.
    pub scale: u32,
    /// Default generator seed.
    pub seed: u64,
    /// Default recorded thread count.
    pub threads: usize,
}

/// A bound, not-yet-running service.
pub struct Server {
    listener: UnixListener,
    socket_path: PathBuf,
    scheduler: Arc<Scheduler>,
    defaults: SubmitDefaults,
}

impl Server {
    /// Bind the service socket, replacing a stale socket file if one
    /// exists at `path`.
    pub fn bind(
        path: &Path,
        scheduler: Arc<Scheduler>,
        defaults: SubmitDefaults,
    ) -> std::io::Result<Self> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let listener = UnixListener::bind(path)?;
        Ok(Server {
            listener,
            socket_path: path.to_path_buf(),
            scheduler,
            defaults,
        })
    }

    /// Serve until a client sends `shutdown`. Joins the scheduler's
    /// worker pool and removes the socket file before returning.
    pub fn run(self) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let scheduler = Arc::clone(&self.scheduler);
            let defaults = self.defaults;
            let stop = Arc::clone(&stop);
            let socket_path = self.socket_path.clone();
            std::thread::spawn(move || {
                handle_connection(stream, &scheduler, defaults, &stop, &socket_path);
            });
        }
        self.scheduler.shutdown();
        let _ = std::fs::remove_file(&self.socket_path);
        Ok(())
    }
}

fn handle_connection(
    stream: UnixStream,
    scheduler: &Scheduler,
    defaults: SubmitDefaults,
    stop: &AtomicBool,
    socket_path: &Path,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = respond(&line, scheduler, defaults);
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // The accept loop is parked in accept(); poke it awake so
            // it observes the stop flag and exits.
            let _ = UnixStream::connect(socket_path);
            return;
        }
    }
}

/// Answer one request line. Returns the response line and whether the
/// request asked the service to shut down.
pub fn respond(line: &str, scheduler: &Scheduler, defaults: SubmitDefaults) -> (String, bool) {
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (proto::render_error(&e), false),
    };
    let resp = match req {
        Request::Submit {
            experiment,
            scale,
            seed,
            threads,
            priority,
            wait,
            timeout_ms,
        } => {
            let job = Job {
                experiment,
                scale: scale.unwrap_or(defaults.scale),
                seed: seed.unwrap_or(defaults.seed),
                threads: threads.unwrap_or(defaults.threads),
            };
            match scheduler.submit(job, priority) {
                Err(e) => proto::render_error(&e),
                Ok(outcome) => {
                    if wait {
                        render_wait(scheduler, &outcome.key, timeout_ms)
                    } else {
                        match scheduler.status(&outcome.key) {
                            Some(snap) => {
                                proto::render_submitted(&outcome.key, outcome.deduped, snap.status)
                            }
                            None => proto::render_error("job vanished after submit"),
                        }
                    }
                }
            }
        }
        Request::Status(key) => match scheduler.status(&key) {
            Some(snap) => proto::render_snapshot(&snap),
            None => proto::render_error(&format!("unknown job key `{key}`")),
        },
        Request::Wait(key, timeout_ms) => render_wait(scheduler, &key, timeout_ms),
        Request::Cancel(key) => proto::render_cancelled(scheduler.cancel(&key)),
        Request::Stats => proto::render_stats(&scheduler.stats()),
        Request::Shutdown => return (proto::render_shutdown(), true),
    };
    (resp, false)
}

/// Render a (possibly bounded) wait: terminal snapshot, timed-out
/// in-flight snapshot, or an error for a key the scheduler no longer
/// knows — the waiter always gets an answer instead of hanging.
fn render_wait(
    scheduler: &Scheduler,
    key: &crate::job::JobKey,
    timeout_ms: Option<u64>,
) -> String {
    let timeout = timeout_ms.map(std::time::Duration::from_millis);
    match scheduler.wait_timeout(key, timeout) {
        WaitOutcome::Terminal(snap) => proto::render_snapshot(&snap),
        WaitOutcome::Pending(snap) => proto::render_wait_timeout(&snap),
        WaitOutcome::Unknown => proto::render_error(&format!("unknown job key `{key}`")),
    }
}

/// Client helper: connect to `socket`, send one request line, read one
/// response line. Used by `cxlg submit` / `cxlg serve --stats` and the
/// service tests.
pub fn request_one(socket: &Path, line: &str) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    writeln!(stream, "{line}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}
