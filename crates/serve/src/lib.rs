//! # cxlg-serve — the campaign job service
//!
//! Turns the batch campaign into a long-running service shape: clients
//! submit **jobs** (one experiment at one `(scale, seed, threads)`
//! configuration), a **bounded worker pool** schedules them over FIFO
//! priority lanes with singleflight dedup, and results are memoized in
//! a **content-addressed store** so a job whose inputs have not changed
//! is served from cache instead of re-simulated.
//!
//! * [`job`] — the [`Job`] model and the deterministic
//!   [`JobKey`] derived from the job fields plus the graph
//!   fingerprints of its datasets;
//! * [`store`] — [`ResultStore`]: one directory per
//!   job key holding the result payloads and a manifest with integrity
//!   checksums, published atomically (write-then-rename) and verified
//!   on every read;
//! * [`scheduler`] — [`Scheduler`]: the worker
//!   pool, job lifecycle (`Queued → Running → Done/Failed/TimedOut`,
//!   plus `Cancelled` for jobs pulled from the queue), singleflight,
//!   bounded retries, the per-job watchdog, the RSS-aware admission
//!   gate, and the cache-first execution path;
//! * [`fault`] — the deterministic chaos layer: a
//!   [`fault::FaultPlan`] schedules worker panics, execute errors,
//!   delays, torn publishes, and checksum corruption onto exact event
//!   indices, replayable byte-for-byte from `(seed, plan)`;
//! * [`stats`] — the byte-stable service statistics snapshot;
//! * [`proto`] — the newline-delimited JSON request/response wire
//!   format;
//! * [`server`] — the Unix-socket front end (`cxlg serve`).
//!
//! The crate is deliberately ignorant of what a job *does*: execution
//! and graph-fingerprint resolution are injected through the
//! [`JobBackend`] trait, which `cxlg-bench`
//! implements over its experiment registry. That keeps the dependency
//! arrow pointing one way (`bench → serve`) and makes the scheduler and
//! store testable with stub backends.
//!
//! Determinism contract: a cached result is byte-identical to a fresh
//! run (checksummed payload bytes are replayed verbatim), and every
//! serialized artifact is byte-stable except the explicitly exempted
//! wall-clock / RSS telemetry fields, mirroring the campaign manifest's
//! exemptions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod job;
pub mod proto;
pub mod scheduler;
#[cfg(unix)]
pub mod server;
pub mod stats;
pub mod store;

pub use fault::{FaultInjector, FaultPlan};
pub use job::{Job, JobKey, Priority};
pub use scheduler::{JobBackend, JobOutput, Scheduler, SchedulerConfig, WaitOutcome};
pub use store::ResultStore;
