//! Deterministic fault injection for the campaign service.
//!
//! The paper's campaigns run for hours against real storage hardware,
//! where worker crashes, torn writes, and stuck jobs are routine. This
//! module makes those failures *schedulable*: a [`FaultPlan`] names
//! which occurrence of which internal event should misbehave, and a
//! [`FaultInjector`] threads that schedule behind the scheduler's
//! execute path and the store's publish path. Because faults key on
//! **deterministic event counters** (the Nth execution attempt, the Nth
//! publication) rather than wall-clock or entropy, a chaos run is
//! replayable byte-for-byte from its `(seed, plan)` pair — every chaos
//! test doubles as a regression test.
//!
//! Fault sites and kinds:
//!
//! | kind            | site            | effect |
//! |-----------------|-----------------|--------|
//! | `panic@N`       | Nth execution   | the worker's backend call panics (exercises `catch_unwind` containment + retry) |
//! | `error@N`       | Nth execution   | the backend reports an execute-time error |
//! | `delay@N:MS`    | Nth execution   | completion is delayed by `MS` ms (exercises watchdog/timeout paths) |
//! | `torn@N`        | Nth publication | the publish dies mid-stage: a partial `.tmp-*` staging dir is left behind and the publish fails |
//! | `corrupt@N`     | Nth publication | the publish lands, then one payload byte is flipped (exercises checksum quarantine + re-execution) |
//!
//! The corruption target byte and XOR mask are drawn from a
//! [`SplitMix64`] stream **constructed from the plan seed** (lint rule
//! D3: seeded construction only), so even the damage itself replays.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// SplitMix64 (Vigna's public-domain reference): the plan's only
/// randomness source. Seeded construction only — rule D3.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// What a scheduled fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the backend call (worker crash).
    Panic,
    /// Return an execute-time error from the backend call.
    Error,
    /// Sleep this many milliseconds before executing (stuck job).
    DelayMs(u64),
    /// Fail the publish mid-stage, leaving `.tmp-*` litter.
    Torn,
    /// Land the publish, then flip one payload byte.
    Corrupt,
}

impl FaultKind {
    /// Wire/plan name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::DelayMs(_) => "delay",
            FaultKind::Torn => "torn",
            FaultKind::Corrupt => "corrupt",
        }
    }

    /// Whether the kind fires at the execute site (vs the publish site).
    pub fn is_execute_site(self) -> bool {
        matches!(
            self,
            FaultKind::Panic | FaultKind::Error | FaultKind::DelayMs(_)
        )
    }
}

/// One scheduled fault: `kind` fires on the `nth` (1-based) event at
/// its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// What happens.
    pub kind: FaultKind,
    /// 1-based occurrence index at the kind's site.
    pub nth: u64,
}

/// A parsed, deterministic fault schedule.
///
/// The plan grammar is a comma-separated rule list, each rule
/// `kind@occurrence` with an optional `:ms` suffix for delays:
///
/// ```text
/// panic@2,error@5,torn@3,corrupt@4,delay@6:25
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled rules, in declaration order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a plan spec. Empty specs yield an empty (no-fault) plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind_str, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault rule `{part}` lacks `@occurrence`"))?;
            let (nth_str, ms_str) = match rest.split_once(':') {
                Some((n, ms)) => (n, Some(ms)),
                None => (rest, None),
            };
            let nth: u64 = nth_str
                .parse()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("fault rule `{part}`: bad occurrence `{nth_str}` (want >= 1)"))?;
            let kind = match (kind_str, ms_str) {
                ("panic", None) => FaultKind::Panic,
                ("error", None) => FaultKind::Error,
                ("torn", None) => FaultKind::Torn,
                ("corrupt", None) => FaultKind::Corrupt,
                ("delay", Some(ms)) => FaultKind::DelayMs(
                    ms.parse()
                        .map_err(|_| format!("fault rule `{part}`: bad delay ms `{ms}`"))?,
                ),
                ("delay", None) => {
                    return Err(format!("fault rule `{part}`: delay needs `:ms` (delay@N:MS)"))
                }
                (other, _) => {
                    return Err(format!(
                        "unknown fault kind `{other}` (panic|error|delay|torn|corrupt)"
                    ))
                }
            };
            rules.push(FaultRule { kind, nth });
        }
        Ok(FaultPlan { rules })
    }

    /// Render the plan back to its spec string (parse∘render = id).
    pub fn render(&self) -> String {
        self.rules
            .iter()
            .map(|r| match r.kind {
                FaultKind::DelayMs(ms) => format!("delay@{}:{ms}", r.nth),
                kind => format!("{}@{}", kind.as_str(), r.nth),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// What the execute site should do for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFault {
    /// Proceed normally.
    None,
    /// Panic (the scheduler's `catch_unwind` contains it).
    Panic,
    /// Fail with an injected error.
    Error,
    /// Sleep this many milliseconds, then proceed.
    DelayMs(u64),
}

/// What the publish site should do for one publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishFault {
    /// Proceed normally.
    None,
    /// Abort mid-stage, leaving the staging directory behind.
    Torn,
    /// Publish, then flip one payload byte.
    Corrupt,
}

/// The live injector: a [`FaultPlan`] plus the per-site event counters
/// and a log of fired faults. Thread through
/// [`crate::scheduler::SchedulerConfig`] and the store; absent an
/// injector, both paths are fault-free.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
    exec_seen: AtomicU64,
    publish_seen: AtomicU64,
    fired: Mutex<Vec<String>>,
}

impl FaultInjector {
    /// An injector for `(seed, plan)`. The seed only feeds the
    /// corruption byte stream; the schedule itself is the plan.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        FaultInjector {
            seed,
            plan,
            exec_seen: AtomicU64::new(0),
            publish_seen: AtomicU64::new(0),
            fired: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, kind: FaultKind, nth: u64) {
        let label = match kind {
            FaultKind::DelayMs(ms) => format!("delay@{nth}:{ms}"),
            k => format!("{}@{nth}", k.as_str()),
        };
        self.fired.lock().unwrap().push(label);
    }

    /// Advance the execute counter and report what this attempt should
    /// do. First matching rule wins.
    pub fn on_execute(&self) -> ExecFault {
        let n = self.exec_seen.fetch_add(1, Ordering::SeqCst) + 1;
        for r in &self.plan.rules {
            if r.nth == n && r.kind.is_execute_site() {
                self.record(r.kind, n);
                return match r.kind {
                    FaultKind::Panic => ExecFault::Panic,
                    FaultKind::Error => ExecFault::Error,
                    FaultKind::DelayMs(ms) => ExecFault::DelayMs(ms),
                    _ => unreachable!(),
                };
            }
        }
        ExecFault::None
    }

    /// Advance the publish counter and report what this publication
    /// should do. First matching rule wins.
    pub fn on_publish(&self) -> PublishFault {
        let n = self.publish_seen.fetch_add(1, Ordering::SeqCst) + 1;
        for r in &self.plan.rules {
            if r.nth == n && !r.kind.is_execute_site() {
                self.record(r.kind, n);
                return match r.kind {
                    FaultKind::Torn => PublishFault::Torn,
                    FaultKind::Corrupt => PublishFault::Corrupt,
                    _ => unreachable!(),
                };
            }
        }
        PublishFault::None
    }

    /// Deterministic corruption for a payload of `len` bytes: the byte
    /// offset to damage and a non-zero XOR mask, both drawn from a
    /// SplitMix64 stream keyed by `(seed, publication index)` so the
    /// same `(seed, plan)` damages the same byte the same way.
    pub fn corrupt_pick(&self, len: u64) -> (u64, u8) {
        let n = self.publish_seen.load(Ordering::SeqCst);
        let mut rng = SplitMix64::new(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let offset = if len == 0 { 0 } else { rng.next_u64() % len };
        let mask = ((rng.next_u64() % 255) + 1) as u8;
        (offset, mask)
    }

    /// How many faults have fired so far.
    pub fn fired_count(&self) -> u64 {
        self.fired.lock().unwrap().len() as u64
    }

    /// The fired-fault log, in firing order (deterministic under a
    /// single worker).
    pub fn fired_log(&self) -> Vec<String> {
        self.fired.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_and_round_trips() {
        let spec = "panic@2,error@5,torn@3,corrupt@4,delay@6:25";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.rules.len(), 5);
        assert_eq!(plan.rules[0], FaultRule { kind: FaultKind::Panic, nth: 2 });
        assert_eq!(plan.rules[4], FaultRule { kind: FaultKind::DelayMs(25), nth: 6 });
        assert_eq!(plan.render(), spec);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn plan_rejects_malformed_rules() {
        for bad in [
            "panic",          // no occurrence
            "panic@0",        // occurrence must be >= 1
            "panic@x",        // bad number
            "frob@1",         // unknown kind
            "delay@1",        // delay without ms
            "delay@1:xs",     // bad ms
            "torn@2:5",       // ms suffix on a non-delay kind
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn injector_fires_on_the_scheduled_occurrence_only() {
        let plan = FaultPlan::parse("panic@2,error@4,delay@5:7").unwrap();
        let inj = FaultInjector::new(1, plan);
        assert_eq!(inj.on_execute(), ExecFault::None);
        assert_eq!(inj.on_execute(), ExecFault::Panic);
        assert_eq!(inj.on_execute(), ExecFault::None);
        assert_eq!(inj.on_execute(), ExecFault::Error);
        assert_eq!(inj.on_execute(), ExecFault::DelayMs(7));
        assert_eq!(inj.on_execute(), ExecFault::None);
        assert_eq!(inj.fired_log(), vec!["panic@2", "error@4", "delay@5:7"]);
        assert_eq!(inj.fired_count(), 3);
    }

    #[test]
    fn publish_and_execute_counters_are_independent() {
        let plan = FaultPlan::parse("panic@1,torn@1,corrupt@2").unwrap();
        let inj = FaultInjector::new(1, plan);
        // The publish site ignores execute-site rules and vice versa.
        assert_eq!(inj.on_publish(), PublishFault::Torn);
        assert_eq!(inj.on_execute(), ExecFault::Panic);
        assert_eq!(inj.on_publish(), PublishFault::Corrupt);
        assert_eq!(inj.on_publish(), PublishFault::None);
        assert_eq!(inj.fired_log(), vec!["torn@1", "panic@1", "corrupt@2"]);
    }

    #[test]
    fn corruption_is_deterministic_and_in_bounds() {
        let plan = FaultPlan::parse("corrupt@1").unwrap();
        let a = FaultInjector::new(42, plan.clone());
        let b = FaultInjector::new(42, plan.clone());
        assert_eq!(a.on_publish(), PublishFault::Corrupt);
        assert_eq!(b.on_publish(), PublishFault::Corrupt);
        for len in [1u64, 7, 4096] {
            assert_eq!(a.corrupt_pick(len), b.corrupt_pick(len), "len {len}");
            let (off, mask) = a.corrupt_pick(len);
            assert!(off < len);
            assert_ne!(mask, 0, "a zero mask would be a no-op corruption");
        }
        // A different seed damages differently (overwhelmingly likely).
        let c = FaultInjector::new(43, plan);
        c.on_publish();
        assert_ne!(a.corrupt_pick(4096), c.corrupt_pick(4096));
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (Vigna's reference implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
