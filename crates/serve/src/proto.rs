//! The wire format: newline-delimited JSON requests and responses.
//!
//! Each request is one JSON object on one line with an `op` field
//! (`submit` / `status` / `wait` / `cancel` / `stats` / `shutdown`);
//! each response is one JSON object on one line with an `ok` field.
//! Responses are rendered compactly (no internal newlines) so the
//! stream stays line-delimited.
//!
//! ```text
//! → {"op":"submit","experiment":"fig3","scale":10,"seed":24301,"threads":1}
//! ← {"ok":true,"key":"9f2c…","deduped":false,"status":"queued"}
//! → {"op":"wait","key":"9f2c…"}
//! ← {"ok":true,"key":"9f2c…","experiment":"fig3","status":"done","cache_hit":true,…}
//! → {"op":"stats"}
//! ← {"ok":true,"stats":{…}}
//! ```

use crate::job::{JobKey, Priority};
use crate::scheduler::{JobSnapshot, JobStatus};
use crate::stats::Stats;
use serde::Value;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; missing numeric fields take the server's defaults.
    Submit {
        /// Experiment name.
        experiment: String,
        /// log2 vertex count (server default when absent).
        scale: Option<u32>,
        /// Generator seed (server default when absent).
        seed: Option<u64>,
        /// Thread-pool size to record (server default when absent).
        threads: Option<usize>,
        /// Scheduling lane (default `normal`).
        priority: Priority,
        /// Block the connection until the job is terminal.
        wait: bool,
        /// Upper bound (ms) on a waiting submit's block; `None` waits
        /// forever. Ignored without `wait`.
        timeout_ms: Option<u64>,
    },
    /// Snapshot one job.
    Status(JobKey),
    /// Block until one job is terminal (bounded by the optional
    /// `timeout_ms`), then snapshot it. A timed-out wait answers with
    /// the in-flight snapshot plus `"wait_timed_out":true`.
    Wait(JobKey, Option<u64>),
    /// Cancel a queued job.
    Cancel(JobKey),
    /// Service statistics snapshot.
    Stats,
    /// Stop accepting connections and shut the pool down.
    Shutdown,
}

fn get<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(map: &[(String, Value)], key: &str) -> Result<String, String> {
    match get(map, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field `{key}` must be a string")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn get_u64_opt(map: &[(String, Value)], key: &str) -> Result<Option<u64>, String> {
    match get(map, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::U64(n)) => Ok(Some(*n)),
        Some(Value::I64(n)) if *n >= 0 => Ok(Some(*n as u64)),
        Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
    }
}

fn get_key(map: &[(String, Value)], key: &str) -> Result<JobKey, String> {
    JobKey::parse(&get_str(map, key)?)
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line.trim()).map_err(|e| format!("bad JSON: {e}"))?;
    let Value::Map(map) = v else {
        return Err("request must be a JSON object".to_string());
    };
    let op = get_str(&map, "op")?;
    match op.as_str() {
        "submit" => {
            let experiment = get_str(&map, "experiment")?;
            if experiment.is_empty() {
                return Err("field `experiment` must be non-empty".to_string());
            }
            let scale = match get_u64_opt(&map, "scale")? {
                Some(n) => Some(
                    u32::try_from(n).map_err(|_| "field `scale` out of range".to_string())?,
                ),
                None => None,
            };
            let seed = get_u64_opt(&map, "seed")?;
            let threads = match get_u64_opt(&map, "threads")? {
                Some(0) => return Err("field `threads` must be positive".to_string()),
                Some(n) => Some(
                    usize::try_from(n).map_err(|_| "field `threads` out of range".to_string())?,
                ),
                None => None,
            };
            let priority = match get(&map, "priority") {
                None | Some(Value::Null) => Priority::Normal,
                Some(Value::Str(s)) => Priority::parse(s)?,
                Some(_) => return Err("field `priority` must be a string".to_string()),
            };
            let wait = match get(&map, "wait") {
                None | Some(Value::Null) => false,
                Some(Value::Bool(b)) => *b,
                Some(_) => return Err("field `wait` must be a boolean".to_string()),
            };
            let timeout_ms = get_u64_opt(&map, "timeout_ms")?;
            Ok(Request::Submit {
                experiment,
                scale,
                seed,
                threads,
                priority,
                wait,
                timeout_ms,
            })
        }
        "status" => Ok(Request::Status(get_key(&map, "key")?)),
        "wait" => Ok(Request::Wait(
            get_key(&map, "key")?,
            get_u64_opt(&map, "timeout_ms")?,
        )),
        "cancel" => Ok(Request::Cancel(get_key(&map, "key")?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op `{other}` (submit|status|wait|cancel|stats|shutdown)"
        )),
    }
}

fn compact(v: &Value) -> String {
    serde_json::to_string(v).expect("serialize response")
}

/// `{"ok":false,"error":…}` — one line.
pub fn render_error(msg: &str) -> String {
    compact(&Value::Map(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(msg.to_string())),
    ]))
}

/// Successful submit acknowledgement (non-waiting form) — one line.
pub fn render_submitted(key: &JobKey, deduped: bool, status: JobStatus) -> String {
    compact(&Value::Map(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("key".to_string(), Value::Str(key.as_str().to_string())),
        ("deduped".to_string(), Value::Bool(deduped)),
        ("status".to_string(), Value::Str(status.as_str().to_string())),
    ]))
}

/// A job snapshot as a JSON value (shared by `status`, `wait`, and
/// waiting submits). `wall_ms` / `queue_wait_ms` are telemetry.
pub fn snapshot_value(s: &JobSnapshot) -> Value {
    let mut fields = vec![
        ("ok".to_string(), Value::Bool(true)),
        ("key".to_string(), Value::Str(s.key.as_str().to_string())),
        ("experiment".to_string(), Value::Str(s.job.experiment.clone())),
        ("scale".to_string(), Value::U64(s.job.scale as u64)),
        ("seed".to_string(), Value::U64(s.job.seed)),
        ("threads".to_string(), Value::U64(s.job.threads as u64)),
        (
            "priority".to_string(),
            Value::Str(s.priority.as_str().to_string()),
        ),
        ("status".to_string(), Value::Str(s.status.as_str().to_string())),
        ("cache_hit".to_string(), Value::Bool(s.cache_hit)),
        ("attempts".to_string(), Value::U64(s.attempts)),
        ("wall_ms".to_string(), Value::F64(s.wall_ms)),
        ("queue_wait_ms".to_string(), Value::F64(s.queue_wait_ms)),
        ("dedup_hits".to_string(), Value::U64(s.dedup_hits)),
        (
            "files".to_string(),
            Value::Array(s.files.iter().map(|f| Value::Str(f.clone())).collect()),
        ),
    ];
    if let Some(err) = &s.error {
        fields.push(("error".to_string(), Value::Str(err.clone())));
    }
    Value::Map(fields)
}

/// A job snapshot — one line.
pub fn render_snapshot(s: &JobSnapshot) -> String {
    compact(&snapshot_value(s))
}

/// A bounded wait that ran out of time: the in-flight snapshot plus
/// `"wait_timed_out":true` — one line. Still `ok:true`; the job keeps
/// running and the client can re-issue the wait.
pub fn render_wait_timeout(s: &JobSnapshot) -> String {
    let Value::Map(mut fields) = snapshot_value(s) else {
        unreachable!("snapshot_value always renders a map")
    };
    fields.push(("wait_timed_out".to_string(), Value::Bool(true)));
    compact(&Value::Map(fields))
}

/// A cancel acknowledgement — one line.
pub fn render_cancelled(cancelled: bool) -> String {
    compact(&Value::Map(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("cancelled".to_string(), Value::Bool(cancelled)),
    ]))
}

/// A stats snapshot — one line.
pub fn render_stats(stats: &Stats) -> String {
    compact(&Value::Map(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("stats".to_string(), stats.to_value()),
    ]))
}

/// A shutdown acknowledgement — one line.
pub fn render_shutdown() -> String {
    compact(&Value::Map(vec![("ok".to_string(), Value::Bool(true))]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_full_and_minimal_forms() {
        let r = parse_request(
            r#"{"op":"submit","experiment":"fig3","scale":10,"seed":24301,"threads":2,"priority":"high","wait":true,"timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Submit {
                experiment: "fig3".to_string(),
                scale: Some(10),
                seed: Some(24301),
                threads: Some(2),
                priority: Priority::High,
                wait: true,
                timeout_ms: Some(250),
            }
        );
        let r = parse_request(r#"{"op":"submit","experiment":"fig3"}"#).unwrap();
        assert_eq!(
            r,
            Request::Submit {
                experiment: "fig3".to_string(),
                scale: None,
                seed: None,
                threads: None,
                priority: Priority::Normal,
                wait: false,
                timeout_ms: None,
            }
        );
    }

    #[test]
    fn submit_rejects_malformed_fields() {
        assert!(parse_request(r#"{"op":"submit"}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","experiment":""}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","experiment":"x","scale":"ten"}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","experiment":"x","threads":0}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","experiment":"x","priority":"urgent"}"#).is_err());
        assert!(parse_request(r#"{"op":"submit","experiment":"x","wait":"yes"}"#).is_err());
    }

    #[test]
    fn keyed_ops_parse_and_validate_keys() {
        let key = "0123456789abcdef";
        for (op, want) in [
            ("status", Request::Status(JobKey::parse(key).unwrap())),
            ("wait", Request::Wait(JobKey::parse(key).unwrap(), None)),
            ("cancel", Request::Cancel(JobKey::parse(key).unwrap())),
        ] {
            let r = parse_request(&format!(r#"{{"op":"{op}","key":"{key}"}}"#)).unwrap();
            assert_eq!(r, want);
            assert!(parse_request(&format!(r#"{{"op":"{op}","key":"zz"}}"#)).is_err());
            assert!(parse_request(&format!(r#"{{"op":"{op}"}}"#)).is_err());
        }
    }

    #[test]
    fn wait_parses_its_timeout() {
        let key = "0123456789abcdef";
        let r = parse_request(&format!(
            r#"{{"op":"wait","key":"{key}","timeout_ms":1500}}"#
        ))
        .unwrap();
        assert_eq!(r, Request::Wait(JobKey::parse(key).unwrap(), Some(1500)));
        assert!(
            parse_request(&format!(r#"{{"op":"wait","key":"{key}","timeout_ms":"soon"}}"#))
                .is_err()
        );
    }

    #[test]
    fn bare_ops_and_junk() {
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#).unwrap(), Request::Shutdown);
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"op":"frobnicate"}"#).is_err());
    }

    #[test]
    fn responses_are_single_line_json() {
        let err = render_error("boom");
        assert!(!err.contains('\n'));
        assert!(err.contains("\"ok\""));
        let ack = render_submitted(&JobKey::parse("0123456789abcdef").unwrap(), true, JobStatus::Queued);
        assert!(!ack.contains('\n'));
        assert!(ack.contains("\"deduped\""));
        assert!(!render_cancelled(true).contains('\n'));
        assert!(!render_shutdown().contains('\n'));
    }
}
