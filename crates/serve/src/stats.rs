//! Service statistics: the `stats` request / `cxlg serve --stats`
//! payload.
//!
//! The snapshot is **byte-stable** for a given sequence of scheduler
//! events — fixed field order, sorted per-experiment table — with the
//! same exemption the campaign manifest carries: the wall-clock and
//! RSS fields (`cumulative_wall_ms`, `rss_now_kb`, `rss_peak_kb`) are
//! host telemetry and are the only nondeterministic bytes in the
//! rendering. A chaos run replayed from the same `(seed, plan)` must
//! reproduce every other byte of this snapshot — that identity is
//! ci.sh's replay gate.

use serde::Value;

/// Cumulative per-experiment execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentStat {
    /// Experiment name.
    pub experiment: String,
    /// Jobs that reached a terminal executed state (hits and misses).
    pub jobs: u64,
    /// Summed execution wall-clock (ms) — telemetry, exempt from
    /// byte-stability.
    pub cumulative_wall_ms: f64,
}

/// Counters of the result store's recovery machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Stale `.tmp-*` staging directories reaped on open.
    pub staging_reaped: u64,
    /// Entries quarantined after failing verification.
    pub quarantined: u64,
    /// Entries evicted by GC.
    pub evicted: u64,
    /// Entries currently in the store.
    pub entries: u64,
}

/// Point-in-time service counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Live queued entries per lane, in `[high, normal, low]` order.
    pub queue_depth: [usize; 3],
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs that reached `Done`.
    pub completed: u64,
    /// Jobs that reached `Failed` (after exhausting retries).
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Submissions collapsed by singleflight.
    pub deduped: u64,
    /// Completions served from the result store.
    pub cache_hits: u64,
    /// Completions that required fresh execution.
    pub cache_misses: u64,
    /// Failed attempts re-queued under the retry budget.
    pub retries: u64,
    /// Executions marked `TimedOut` by the watchdog.
    pub timed_out: u64,
    /// Queued jobs the admission gate deferred at least once.
    pub admission_deferred: u64,
    /// Faults fired by the attached injector (0 without one).
    pub faults_injected: u64,
    /// Result-store recovery counters.
    pub store: StoreStats,
    /// Current process RSS (kB) — telemetry, exempt from
    /// byte-stability.
    pub rss_now_kb: u64,
    /// Peak process RSS (kB) — telemetry, exempt from byte-stability.
    pub rss_peak_kb: u64,
    /// Per-experiment cumulative table, sorted by experiment name.
    pub per_experiment: Vec<ExperimentStat>,
}

impl Stats {
    /// Fraction of executed jobs served from cache (0 when none ran).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The snapshot as a JSON value with fixed key order.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "queue_depth".to_string(),
                Value::Map(vec![
                    ("high".to_string(), Value::U64(self.queue_depth[0] as u64)),
                    ("normal".to_string(), Value::U64(self.queue_depth[1] as u64)),
                    ("low".to_string(), Value::U64(self.queue_depth[2] as u64)),
                ]),
            ),
            ("running".to_string(), Value::U64(self.running as u64)),
            ("completed".to_string(), Value::U64(self.completed)),
            ("failed".to_string(), Value::U64(self.failed)),
            ("cancelled".to_string(), Value::U64(self.cancelled)),
            ("deduped".to_string(), Value::U64(self.deduped)),
            ("cache_hits".to_string(), Value::U64(self.cache_hits)),
            ("cache_misses".to_string(), Value::U64(self.cache_misses)),
            ("retries".to_string(), Value::U64(self.retries)),
            ("timed_out".to_string(), Value::U64(self.timed_out)),
            (
                "admission_deferred".to_string(),
                Value::U64(self.admission_deferred),
            ),
            (
                "faults_injected".to_string(),
                Value::U64(self.faults_injected),
            ),
            ("hit_ratio".to_string(), Value::F64(self.hit_ratio())),
            (
                "store".to_string(),
                Value::Map(vec![
                    (
                        "staging_reaped".to_string(),
                        Value::U64(self.store.staging_reaped),
                    ),
                    ("quarantined".to_string(), Value::U64(self.store.quarantined)),
                    ("evicted".to_string(), Value::U64(self.store.evicted)),
                    ("entries".to_string(), Value::U64(self.store.entries)),
                ]),
            ),
            // Telemetry: exempt from byte-stability, like wall-clock.
            ("rss_now_kb".to_string(), Value::U64(self.rss_now_kb)),
            ("rss_peak_kb".to_string(), Value::U64(self.rss_peak_kb)),
            (
                "per_experiment".to_string(),
                Value::Array(
                    self.per_experiment
                        .iter()
                        .map(|e| {
                            Value::Map(vec![
                                ("experiment".to_string(), Value::Str(e.experiment.clone())),
                                ("jobs".to_string(), Value::U64(e.jobs)),
                                // Telemetry: exempt.
                                (
                                    "cumulative_wall_ms".to_string(),
                                    Value::F64(e.cumulative_wall_ms),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-rendered JSON snapshot.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("serialize stats")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stats {
        Stats {
            queue_depth: [1, 2, 0],
            running: 1,
            completed: 5,
            failed: 1,
            cancelled: 2,
            deduped: 3,
            cache_hits: 4,
            cache_misses: 1,
            retries: 2,
            timed_out: 1,
            admission_deferred: 1,
            faults_injected: 3,
            store: StoreStats {
                staging_reaped: 1,
                quarantined: 1,
                evicted: 2,
                entries: 4,
            },
            rss_now_kb: 1024,
            rss_peak_kb: 2048,
            per_experiment: vec![
                ExperimentStat {
                    experiment: "fig3".to_string(),
                    jobs: 3,
                    cumulative_wall_ms: 12.5,
                },
                ExperimentStat {
                    experiment: "table1".to_string(),
                    jobs: 2,
                    cumulative_wall_ms: 40.0,
                },
            ],
        }
    }

    #[test]
    fn hit_ratio_handles_zero_and_mixes() {
        let mut s = sample();
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
        s.cache_hits = 0;
        s.cache_misses = 0;
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn rendering_is_byte_stable_modulo_telemetry_fields() {
        let a = sample().render_json();
        let mut other = sample();
        // Only the exempt telemetry differs.
        other.per_experiment[0].cumulative_wall_ms = 99.0;
        other.rss_now_kb = 777;
        other.rss_peak_kb = 999;
        let b = other.render_json();
        // The same strip ci.sh's chaos replay gate applies.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall_ms") && !l.contains("rss_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_ne!(a, b);
        assert_eq!(strip(&a), strip(&b), "non-telemetry bytes must be identical");
        // And rendering the same snapshot twice is bytewise stable.
        assert_eq!(a, sample().render_json());
    }

    #[test]
    fn value_field_order_is_pinned() {
        let Value::Map(m) = sample().to_value() else {
            panic!("stats must render a map")
        };
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "queue_depth",
                "running",
                "completed",
                "failed",
                "cancelled",
                "deduped",
                "cache_hits",
                "cache_misses",
                "retries",
                "timed_out",
                "admission_deferred",
                "faults_injected",
                "hit_ratio",
                "store",
                "rss_now_kb",
                "rss_peak_kb",
                "per_experiment"
            ]
        );
        let Some((_, Value::Map(store))) = m.iter().find(|(k, _)| k == "store") else {
            panic!("store must render a map")
        };
        let store_keys: Vec<&str> = store.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            store_keys,
            vec!["staging_reaped", "quarantined", "evicted", "entries"]
        );
    }
}
