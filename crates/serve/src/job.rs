//! The job model: what a client asks the service to run, and the
//! deterministic key that names its result in the content-addressed
//! store.
//!
//! A [`Job`] is one experiment at one `(scale, seed, threads)`
//! configuration. Its [`JobKey`] is an FNV-64 hash over a canonical
//! string of those fields **plus the graph fingerprints of every
//! dataset the experiment consumes** (`Csr::fingerprint`), so the key
//! changes — and the cache misses — whenever the experiment identity,
//! its parameters, or the actual bytes of its input graphs change.
//! `threads` is part of the key because every result JSON records the
//! pool size in its header; byte-identical replay requires keying on
//! it. (Result *series* are thread-count invariant by the ci.sh
//! byte-diff gate; only the header line differs.)

use serde::{Deserialize, Serialize};

/// One schedulable unit: an experiment at a fixed configuration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Job {
    /// Registered experiment name (`fig3`, `table1`, …).
    pub experiment: String,
    /// log2 of the vertex count.
    pub scale: u32,
    /// Generator seed shared by the job's datasets.
    pub seed: u64,
    /// Worker-pool size recorded in every result header.
    pub threads: usize,
}

/// Scheduling lane. FIFO within a lane; the pool always drains `High`
/// before `Normal` before `Low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Drained first (interactive / gating requests).
    High,
    /// The default lane.
    Normal,
    /// Drained last (backfill, speculative sweeps).
    Low,
}

impl Priority {
    /// Lane index in drain order (0 drains first).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Wire name (`high` / `normal` / `low`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority `{other}` (high|normal|low)")),
        }
    }
}

/// Content-addressed name of a job's result: 16 lowercase hex digits of
/// an FNV-64 over the job's canonical description.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey(String);

impl JobKey {
    /// Derive the key for `job` given the `(dataset label, fingerprint)`
    /// pairs of every graph it consumes. The pairs are sorted by label
    /// before hashing so declaration order never changes the key.
    pub fn derive(job: &Job, fingerprints: &[(String, u64)]) -> Self {
        JobKey(fnv64_hex(&canonical(job, fingerprints)))
    }

    /// Wrap an already-derived key (wire intake). Accepts exactly 16
    /// lowercase hex digits.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) {
            Ok(JobKey(s.to_string()))
        } else {
            Err(format!("malformed job key `{s}` (want 16 lowercase hex digits)"))
        }
    }

    /// The key as a hex string (the CAS directory name).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The canonical description a key hashes: stable across field
/// reordering and fingerprint declaration order. Stored in the CAS
/// manifest so an operator can audit what a key binds.
pub fn canonical(job: &Job, fingerprints: &[(String, u64)]) -> String {
    let mut fps: Vec<&(String, u64)> = fingerprints.iter().collect();
    fps.sort();
    let fp_part: Vec<String> = fps
        .iter()
        .map(|(label, fp)| format!("{label}={fp:#018x}"))
        .collect();
    format!(
        "experiment={};scale={};seed={:#x};threads={};graphs=[{}]",
        job.experiment,
        job.scale,
        job.seed,
        job.threads,
        fp_part.join(",")
    )
}

/// FNV-1a 64-bit over a byte slice — the same construction
/// `Csr::fingerprint` uses, kept dependency-free here because the store
/// also checksums payload bytes with it.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fnv64_hex(s: &str) -> String {
    format!("{:016x}", fnv64(s.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            experiment: "fig3".to_string(),
            scale: 10,
            seed: 0x5EED,
            threads: 2,
        }
    }

    #[test]
    fn key_is_stable_and_order_independent() {
        let a = JobKey::derive(&job(), &[("urand10".into(), 7), ("kron10".into(), 9)]);
        let b = JobKey::derive(&job(), &[("kron10".into(), 9), ("urand10".into(), 7)]);
        assert_eq!(a, b, "fingerprint declaration order must not move the key");
        assert_eq!(a.as_str().len(), 16);
        assert!(a.as_str().bytes().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn every_field_moves_the_key() {
        let base = JobKey::derive(&job(), &[("urand10".into(), 7)]);
        let mut j = job();
        j.experiment = "fig4".into();
        assert_ne!(JobKey::derive(&j, &[("urand10".into(), 7)]), base);
        let mut j = job();
        j.scale = 11;
        assert_ne!(JobKey::derive(&j, &[("urand10".into(), 7)]), base);
        let mut j = job();
        j.seed = 1;
        assert_ne!(JobKey::derive(&j, &[("urand10".into(), 7)]), base);
        let mut j = job();
        j.threads = 4;
        assert_ne!(JobKey::derive(&j, &[("urand10".into(), 7)]), base);
        // A changed graph fingerprint (same label) also misses.
        assert_ne!(JobKey::derive(&job(), &[("urand10".into(), 8)]), base);
    }

    #[test]
    fn parse_round_trips_and_rejects_junk() {
        let k = JobKey::derive(&job(), &[]);
        assert_eq!(JobKey::parse(k.as_str()).unwrap(), k);
        assert!(JobKey::parse("short").is_err());
        assert!(JobKey::parse("0123456789ABCDEF").is_err(), "uppercase rejected");
        assert!(JobKey::parse("0123456789abcdeg").is_err());
    }

    #[test]
    fn canonical_names_every_input() {
        let c = canonical(&job(), &[("urand10(deg32)@0x5eed".into(), 0xAB)]);
        assert!(c.contains("experiment=fig3"));
        assert!(c.contains("scale=10"));
        assert!(c.contains("seed=0x5eed"));
        assert!(c.contains("threads=2"));
        assert!(c.contains("urand10(deg32)@0x5eed=0x00000000000000ab"));
    }

    #[test]
    fn priority_parses_and_orders() {
        assert_eq!(Priority::parse("high").unwrap(), Priority::High);
        assert_eq!(Priority::parse("normal").unwrap(), Priority::Normal);
        assert_eq!(Priority::parse("low").unwrap(), Priority::Low);
        assert!(Priority::parse("urgent").is_err());
        assert!(Priority::High.lane() < Priority::Normal.lane());
        assert!(Priority::Normal.lane() < Priority::Low.lane());
        assert_eq!(Priority::parse(Priority::Low.as_str()).unwrap(), Priority::Low);
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
