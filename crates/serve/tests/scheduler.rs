//! Scheduler contract tests: singleflight dedup (the build-count
//! assertion mirroring `tests/campaign_manifest.rs`), priority-lane
//! drain order, queued-job cancellation, failure + re-arm, and
//! cache-first execution across scheduler lifetimes.

use cxlg_serve::job::{Job, Priority};
use cxlg_serve::scheduler::{JobBackend, JobOutput, JobStatus, Scheduler};
use cxlg_serve::store::ResultStore;
use cxlg_serve::JobKey;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Test backend: counts executions, records execution order, can hold
/// jobs at a gate and can be told to fail.
struct StubBackend {
    execs: AtomicU64,
    order: Mutex<Vec<String>>,
    gate: (Mutex<bool>, Condvar),
    gated: AtomicBool,
    fail: AtomicBool,
}

impl StubBackend {
    fn new() -> Arc<Self> {
        Arc::new(StubBackend {
            execs: AtomicU64::new(0),
            order: Mutex::new(Vec::new()),
            gate: (Mutex::new(false), Condvar::new()),
            gated: AtomicBool::new(false),
            fail: AtomicBool::new(false),
        })
    }

    fn hold_next(&self) {
        *self.gate.0.lock().unwrap() = false;
        self.gated.store(true, Ordering::SeqCst);
    }

    fn release(&self) {
        *self.gate.0.lock().unwrap() = true;
        self.gate.1.notify_all();
    }
}

impl JobBackend for StubBackend {
    fn fingerprints(&self, job: &Job) -> Result<Vec<(String, u64)>, String> {
        Ok(vec![(format!("ds{}", job.scale), 0xF00D)])
    }

    fn execute(&self, _key: &JobKey, job: &Job) -> Result<JobOutput, String> {
        if self.gated.swap(false, Ordering::SeqCst) {
            let mut open = self.gate.0.lock().unwrap();
            while !*open {
                open = self.gate.1.wait(open).unwrap();
            }
        }
        self.order.lock().unwrap().push(job.experiment.clone());
        self.execs.fetch_add(1, Ordering::SeqCst);
        if self.fail.load(Ordering::SeqCst) {
            return Err("stub failure".to_string());
        }
        Ok(JobOutput {
            files: vec![(
                format!("{}.json", job.experiment),
                format!("{{\"result\":\"{}@{}\"}}", job.experiment, job.scale).into_bytes(),
            )],
        })
    }
}

fn job(name: &str) -> Job {
    Job {
        experiment: name.to_string(),
        scale: 8,
        seed: 1,
        threads: 1,
    }
}

fn tmp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!(
        "cxlg-sched-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::new(dir).unwrap()
}

/// Spin until `key` reaches `want` (workers set `Running` before they
/// enter the backend, so this orders the test against pickup races).
fn await_status(sched: &Scheduler, key: &JobKey, want: JobStatus) {
    while sched.status(key).map(|s| s.status) != Some(want) {
        std::thread::yield_now();
    }
}

#[test]
fn concurrent_identical_submissions_execute_once() {
    let backend = StubBackend::new();
    let sched = Scheduler::new(tmp_store("singleflight"), backend.clone(), 4);
    // 8 threads race the same job in; singleflight must collapse them.
    let keys: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sched = &sched;
                s.spawn(move || sched.submit(job("fig3"), Priority::Normal).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let key = keys[0].key.clone();
    assert!(keys.iter().all(|o| o.key == key), "all submissions share one key");
    assert_eq!(
        keys.iter().filter(|o| o.deduped).count(),
        7,
        "exactly one submission enqueues; seven collapse"
    );
    let snap = sched.wait(&key).expect("job must complete");
    assert_eq!(snap.status, JobStatus::Done);
    assert_eq!(snap.dedup_hits, 7);
    assert_eq!(
        backend.execs.load(Ordering::SeqCst),
        1,
        "singleflight must execute exactly once"
    );
    let stats = sched.stats();
    assert_eq!(stats.deduped, 7);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cache_misses, 1);
}

#[test]
fn priority_lanes_drain_high_before_normal_before_low() {
    let backend = StubBackend::new();
    let sched = Scheduler::new(tmp_store("priority"), backend.clone(), 1);
    // Occupy the single worker with a gated job, then queue one job per
    // lane in worst-case submission order (low first).
    backend.hold_next();
    let gate = sched.submit(job("gate"), Priority::Normal).unwrap();
    // Only queue the rest once the worker is pinned on the gate job, so
    // lane order (not pickup timing) decides what runs next.
    await_status(&sched, &gate.key, JobStatus::Running);
    sched.submit(job("backfill"), Priority::Low).unwrap();
    sched.submit(job("routine"), Priority::Normal).unwrap();
    sched.submit(job("urgent"), Priority::High).unwrap();
    backend.release();
    sched.drain();
    let order = backend.order.lock().unwrap().clone();
    assert_eq!(order, vec!["gate", "urgent", "routine", "backfill"]);
    let stats = sched.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.queue_depth, [0, 0, 0]);
}

#[test]
fn queued_jobs_cancel_but_running_and_done_do_not() {
    let backend = StubBackend::new();
    let sched = Scheduler::new(tmp_store("cancel"), backend.clone(), 1);
    backend.hold_next();
    let gate = sched.submit(job("gate"), Priority::Normal).unwrap();
    await_status(&sched, &gate.key, JobStatus::Running);
    let doomed = sched.submit(job("doomed"), Priority::Normal).unwrap();
    assert!(sched.cancel(&doomed.key), "queued job must cancel");
    assert!(!sched.cancel(&doomed.key), "double cancel is a no-op");
    let snap = sched.wait(&doomed.key).unwrap();
    assert_eq!(snap.status, JobStatus::Cancelled);
    backend.release();
    let done = sched.wait(&gate.key).unwrap();
    assert_eq!(done.status, JobStatus::Done);
    assert!(!sched.cancel(&gate.key), "done job must not cancel");
    sched.drain();
    assert_eq!(
        backend.execs.load(Ordering::SeqCst),
        1,
        "the cancelled job must never execute"
    );
    assert_eq!(sched.stats().cancelled, 1);
    // Unknown keys don't cancel.
    assert!(!sched.cancel(&JobKey::parse("0123456789abcdef").unwrap()));
}

#[test]
fn failed_jobs_report_the_error_and_rearm_on_resubmit() {
    let backend = StubBackend::new();
    backend.fail.store(true, Ordering::SeqCst);
    let sched = Scheduler::new(tmp_store("fail"), backend.clone(), 1);
    let first = sched.submit(job("flaky"), Priority::Normal).unwrap();
    let snap = sched.wait(&first.key).unwrap();
    assert_eq!(snap.status, JobStatus::Failed);
    assert_eq!(snap.error.as_deref(), Some("stub failure"));
    assert_eq!(sched.stats().failed, 1);
    // Nothing corrupt lands in the store.
    assert!(sched.store().probe(&first.key).is_none());
    // A resubmission re-arms instead of deduping.
    backend.fail.store(false, Ordering::SeqCst);
    let second = sched.submit(job("flaky"), Priority::Normal).unwrap();
    assert_eq!(second.key, first.key);
    assert!(!second.deduped, "failed entries re-arm, not dedup");
    let snap = sched.wait(&second.key).unwrap();
    assert_eq!(snap.status, JobStatus::Done);
    assert_eq!(backend.execs.load(Ordering::SeqCst), 2);
}

#[test]
fn results_replay_from_the_store_across_scheduler_lifetimes() {
    let backend = StubBackend::new();
    let dir = std::env::temp_dir().join(format!(
        "cxlg-sched-test-replay-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let sched = Scheduler::new(ResultStore::new(&dir).unwrap(), backend.clone(), 2);
    let first = sched.submit(job("fig3"), Priority::Normal).unwrap();
    let snap = sched.wait(&first.key).unwrap();
    assert_eq!(snap.status, JobStatus::Done);
    assert!(!snap.cache_hit, "first run is a miss");
    assert_eq!(snap.files, vec!["fig3.json".to_string()]);
    sched.shutdown();

    // A fresh scheduler over the same store serves the job from cache.
    let sched = Scheduler::new(ResultStore::new(&dir).unwrap(), backend.clone(), 2);
    let second = sched.submit(job("fig3"), Priority::Normal).unwrap();
    assert_eq!(second.key, first.key, "same job, same key across processes");
    let snap = sched.wait(&second.key).unwrap();
    assert_eq!(snap.status, JobStatus::Done);
    assert!(snap.cache_hit, "second lifetime must hit the store");
    assert_eq!(
        backend.execs.load(Ordering::SeqCst),
        1,
        "a cache hit must not re-execute"
    );
    let stats = sched.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 0);
    assert!((stats.hit_ratio() - 1.0).abs() < 1e-12);

    // The stored bytes are the execution's bytes, verbatim.
    let hit = sched.store().probe(&first.key).unwrap();
    assert_eq!(hit.files[0].1, b"{\"result\":\"fig3@8\"}".to_vec());
    assert_eq!(hit.manifest.job.experiment, "fig3");
    assert_eq!(hit.manifest.fingerprints[0].spec, "ds8");
    assert_eq!(hit.manifest.fingerprints[0].fingerprint, 0xF00D);
    assert_eq!(hit.manifest.rss_semantics, "process-peak-delta");
}

#[test]
fn a_corrupted_store_entry_is_reexecuted_not_served() {
    let backend = StubBackend::new();
    let dir = std::env::temp_dir().join(format!(
        "cxlg-sched-test-corrupt-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let sched = Scheduler::new(ResultStore::new(&dir).unwrap(), backend.clone(), 1);
    let key = sched.submit(job("fig3"), Priority::Normal).unwrap().key;
    sched.wait(&key).unwrap();
    sched.shutdown();
    assert_eq!(backend.execs.load(Ordering::SeqCst), 1);

    // Tamper with the stored payload (same length, different bytes).
    let payload = dir.join(key.as_str()).join("fig3.json");
    let mut bytes = std::fs::read(&payload).unwrap();
    bytes[2] ^= 0xFF;
    std::fs::write(&payload, &bytes).unwrap();

    let sched = Scheduler::new(ResultStore::new(&dir).unwrap(), backend.clone(), 1);
    let snap = {
        let outcome = sched.submit(job("fig3"), Priority::Normal).unwrap();
        sched.wait(&outcome.key).unwrap()
    };
    assert_eq!(snap.status, JobStatus::Done);
    assert!(!snap.cache_hit, "corruption must force re-execution");
    assert_eq!(backend.execs.load(Ordering::SeqCst), 2);
    // The re-executed entry verifies again.
    let hit = sched.store().probe(&key).expect("repaired entry must probe");
    assert_eq!(hit.files[0].1, b"{\"result\":\"fig3@8\"}".to_vec());
}

#[test]
fn per_experiment_stats_accumulate_in_sorted_order() {
    let backend = StubBackend::new();
    let sched = Scheduler::new(tmp_store("stats"), backend.clone(), 2);
    for name in ["zeta", "alpha", "alpha"] {
        let o = sched.submit(job(name), Priority::Normal).unwrap();
        sched.wait(&o.key).unwrap();
    }
    let stats = sched.stats();
    // "alpha" submitted twice: second submission deduped onto the done
    // entry, so only one executed job per distinct key.
    assert_eq!(stats.deduped, 1);
    let names: Vec<&str> = stats
        .per_experiment
        .iter()
        .map(|e| e.experiment.as_str())
        .collect();
    assert_eq!(names, vec!["alpha", "zeta"], "table must sort by name");
    assert!(stats.per_experiment.iter().all(|e| e.jobs == 1));
}

#[test]
fn shutdown_cancels_queued_work_and_rejects_new_submissions() {
    let backend = StubBackend::new();
    let sched = Scheduler::new(tmp_store("shutdown"), backend.clone(), 1);
    backend.hold_next();
    let gate = sched.submit(job("gate"), Priority::Normal).unwrap();
    await_status(&sched, &gate.key, JobStatus::Running);
    let queued = sched.submit(job("stranded"), Priority::Low).unwrap();
    // Shut down while the worker is pinned: the queued job must be
    // cancelled, the running one allowed to finish.
    let joiner = {
        let sched = Arc::clone(&sched);
        std::thread::spawn(move || sched.shutdown())
    };
    let snap = sched.wait(&queued.key).unwrap();
    assert_eq!(snap.status, JobStatus::Cancelled, "queued work is cancelled on shutdown");
    backend.release();
    joiner.join().unwrap();
    assert_eq!(sched.wait(&gate.key).unwrap().status, JobStatus::Done);
    assert!(sched.submit(job("late"), Priority::Normal).is_err());
}
