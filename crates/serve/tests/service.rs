//! End-to-end service test: a real `UnixListener` front end over a stub
//! backend, exercised through the newline-delimited JSON protocol
//! exactly as `cxlg submit` drives it.

#![cfg(unix)]

use cxlg_serve::job::Job;
use cxlg_serve::scheduler::{JobBackend, JobOutput, Scheduler};
use cxlg_serve::server::{request_one, Server, SubmitDefaults};
use cxlg_serve::store::ResultStore;
use cxlg_serve::JobKey;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct EchoBackend {
    execs: AtomicU64,
}

impl JobBackend for EchoBackend {
    fn fingerprints(&self, job: &Job) -> Result<Vec<(String, u64)>, String> {
        Ok(vec![(format!("ds{}", job.scale), 0xBEEF)])
    }

    fn execute(&self, _key: &JobKey, job: &Job) -> Result<JobOutput, String> {
        self.execs.fetch_add(1, Ordering::SeqCst);
        Ok(JobOutput {
            files: vec![(
                format!("{}.json", job.experiment),
                format!("{{\"experiment\":\"{}\"}}", job.experiment).into_bytes(),
            )],
        })
    }
}

fn short_socket_path(tag: &str) -> PathBuf {
    // Unix socket paths are length-limited (~108 bytes); stay in /tmp.
    std::env::temp_dir().join(format!("cxlg-{tag}-{}.sock", std::process::id()))
}

fn field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    // Good enough for flat compact responses in a test.
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' {
                *in_str = !*in_str;
            }
            if !*in_str && (c == ',' || c == '}') {
                Some(Some(i))
            } else {
                Some(None)
            }
        })
        .flatten()
        .next()?;
    Some(rest[..end].trim_matches('"'))
}

#[test]
fn service_round_trip_over_a_real_socket() {
    let store_dir = std::env::temp_dir().join(format!("cxlg-service-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let backend = Arc::new(EchoBackend {
        execs: AtomicU64::new(0),
    });
    let sched = Scheduler::new(ResultStore::new(&store_dir).unwrap(), backend.clone(), 2);
    let socket = short_socket_path("svc");
    let defaults = SubmitDefaults {
        scale: 8,
        seed: 0x5EED,
        threads: 1,
    };
    let server = Server::bind(&socket, Arc::clone(&sched), defaults).unwrap();
    let service = std::thread::spawn(move || server.run());

    // Waiting submit completes in one round trip; defaults fill in.
    let resp = request_one(
        &socket,
        r#"{"op":"submit","experiment":"fig3","wait":true}"#,
    )
    .unwrap();
    assert_eq!(field(&resp, "ok"), Some("true"), "resp: {resp}");
    assert_eq!(field(&resp, "status"), Some("done"));
    assert_eq!(field(&resp, "experiment"), Some("fig3"));
    assert_eq!(field(&resp, "scale"), Some("8"), "server default scale");
    assert_eq!(field(&resp, "cache_hit"), Some("false"));
    let key = field(&resp, "key").unwrap().to_string();

    // Second identical submit collapses onto the done entry
    // (singleflight) — no re-execution, no second store entry.
    let resp = request_one(
        &socket,
        r#"{"op":"submit","experiment":"fig3","wait":true}"#,
    )
    .unwrap();
    assert_eq!(field(&resp, "key"), Some(key.as_str()), "same job, same key");
    assert_eq!(field(&resp, "status"), Some("done"));
    assert_eq!(backend.execs.load(Ordering::SeqCst), 1, "deduped, not re-run");

    // Status by key; unknown keys and malformed lines error without
    // killing the connection loop.
    let resp = request_one(&socket, &format!(r#"{{"op":"status","key":"{key}"}}"#)).unwrap();
    assert_eq!(field(&resp, "status"), Some("done"));
    let resp = request_one(&socket, r#"{"op":"status","key":"ffffffffffffffff"}"#).unwrap();
    assert_eq!(field(&resp, "ok"), Some("false"));
    let resp = request_one(&socket, "not json at all").unwrap();
    assert_eq!(field(&resp, "ok"), Some("false"));

    // Stats reflect one execution and one collapsed submission.
    let resp = request_one(&socket, r#"{"op":"stats"}"#).unwrap();
    assert_eq!(field(&resp, "ok"), Some("true"));
    assert_eq!(field(&resp, "deduped"), Some("1"), "resp: {resp}");
    assert_eq!(field(&resp, "cache_misses"), Some("1"));
    assert_eq!(field(&resp, "completed"), Some("1"));

    // Shutdown stops the accept loop, joins the pool, removes the
    // socket file.
    let resp = request_one(&socket, r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(field(&resp, "ok"), Some("true"));
    service.join().unwrap().unwrap();
    assert!(!socket.exists(), "socket file must be cleaned up");
}
