//! Chaos/recovery contract tests: deterministic fault injection, the
//! retry budget, the watchdog, bounded waits, terminal-entry pruning,
//! the admission gate, and concurrent checksum repair.
//!
//! The headline property is **replayability**: a run under a fixed
//! `(seed, FaultPlan)` must converge to the same healed results and the
//! same stats snapshot (modulo wall-clock/RSS telemetry) every time —
//! every chaos test doubles as a regression test.

use cxlg_serve::fault::{FaultInjector, FaultPlan};
use cxlg_serve::job::{Job, Priority};
use cxlg_serve::scheduler::{
    JobBackend, JobOutput, JobStatus, Scheduler, SchedulerConfig, WaitOutcome,
};
use cxlg_serve::store::{manifest_for, ResultStore};
use cxlg_serve::JobKey;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Deterministic echo backend with an optional gate (to pin a worker)
/// and a per-scale admission estimate.
struct EchoBackend {
    execs: AtomicU64,
    gate: (Mutex<bool>, Condvar),
    gated: AtomicBool,
    admission_unit: u64,
}

impl EchoBackend {
    fn new() -> Arc<Self> {
        Arc::new(EchoBackend {
            execs: AtomicU64::new(0),
            gate: (Mutex::new(false), Condvar::new()),
            gated: AtomicBool::new(false),
            admission_unit: 0,
        })
    }

    fn with_admission(unit: u64) -> Arc<Self> {
        Arc::new(EchoBackend {
            execs: AtomicU64::new(0),
            gate: (Mutex::new(false), Condvar::new()),
            gated: AtomicBool::new(false),
            admission_unit: unit,
        })
    }

    fn hold_next(&self) {
        *self.gate.0.lock().unwrap() = false;
        self.gated.store(true, Ordering::SeqCst);
    }

    fn release(&self) {
        *self.gate.0.lock().unwrap() = true;
        self.gate.1.notify_all();
    }
}

impl JobBackend for EchoBackend {
    fn fingerprints(&self, job: &Job) -> Result<Vec<(String, u64)>, String> {
        Ok(vec![(format!("ds{}", job.scale), 0xF00D)])
    }

    fn execute(&self, _key: &JobKey, job: &Job) -> Result<JobOutput, String> {
        if self.gated.swap(false, Ordering::SeqCst) {
            let mut open = self.gate.0.lock().unwrap();
            while !*open {
                open = self.gate.1.wait(open).unwrap();
            }
        }
        self.execs.fetch_add(1, Ordering::SeqCst);
        Ok(JobOutput {
            files: vec![(
                format!("{}.json", job.experiment),
                format!("{{\"result\":\"{}@{}\"}}", job.experiment, job.scale).into_bytes(),
            )],
        })
    }

    fn admission_bytes(&self, _job: &Job) -> u64 {
        self.admission_unit
    }
}

fn job(name: &str) -> Job {
    Job {
        experiment: name.to_string(),
        scale: 8,
        seed: 1,
        threads: 1,
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cxlg-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The telemetry strip ci.sh's replay gate applies: drop wall-clock and
/// RSS lines, keep every other byte.
fn strip_telemetry(s: &str) -> String {
    s.lines()
        .filter(|l| !l.contains("wall_ms") && !l.contains("rss_"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// One full chaos campaign under a pinned plan; returns the stripped
/// stats render and the healed store payload bytes, sorted by key.
fn chaos_campaign(tag: &str) -> (String, Vec<(String, Vec<u8>)>) {
    let plan = FaultPlan::parse("panic@2,error@4,delay@5:10,torn@2,corrupt@3").unwrap();
    let faults = Arc::new(FaultInjector::new(2023, plan));
    let store = ResultStore::new(tmp_dir(tag))
        .unwrap()
        .with_faults(Arc::clone(&faults));
    let backend = EchoBackend::new();
    let sched = Scheduler::with_config(
        store,
        backend,
        SchedulerConfig {
            workers: 1,
            max_attempts: 4,
            faults: Some(Arc::clone(&faults)),
            ..SchedulerConfig::default()
        },
    );

    // Five jobs, submitted (and healed) strictly in order. Under one
    // worker the event trace is fully deterministic:
    //   fig1: exec#1 ok, publish#1 ok                            → done
    //   fig2: exec#2 PANIC → retry → exec#3 ok, publish#2 TORN →
    //         retry → exec#4 ERROR → retry → exec#5 (delayed) ok,
    //         publish#3 CORRUPT                                  → done (poisoned)
    //   fig2 resubmit: Done-entry revalidation misses (corruption
    //         quarantined) → re-arm → exec#6 ok, publish#4 ok    → done (healed)
    //   fig3..fig5: clean                                        → done
    for name in ["fig1", "fig2"] {
        let o = sched.submit(job(name), Priority::Normal).unwrap();
        assert_eq!(sched.wait(&o.key).unwrap().status, JobStatus::Done, "{name}");
    }
    // fig2's Done hides a corrupted entry; resubmission self-heals.
    let o = sched.submit(job("fig2"), Priority::Normal).unwrap();
    assert!(!o.deduped, "a poisoned Done entry must re-arm, not dedup");
    assert_eq!(sched.wait(&o.key).unwrap().status, JobStatus::Done);
    for name in ["fig3", "fig4", "fig5"] {
        let o = sched.submit(job(name), Priority::Normal).unwrap();
        assert_eq!(sched.wait(&o.key).unwrap().status, JobStatus::Done, "{name}");
    }

    let stats = sched.stats();
    assert_eq!(stats.retries, 3, "panic + torn + error each cost one retry");
    assert_eq!(stats.faults_injected, 5, "the whole plan must fire");
    assert_eq!(stats.store.quarantined, 1, "the corruption must quarantine");
    assert_eq!(stats.failed, 0, "every job must heal");
    assert_eq!(stats.completed, 6, "5 jobs + the healing re-run");
    let rendered = stats.render_json();

    let mut payloads = Vec::new();
    for key in sched.store().keys() {
        let hit = sched.store().probe(&key).expect("healed entries must verify");
        for (name, bytes) in hit.files {
            payloads.push((format!("{key}/{name}"), bytes));
        }
    }
    assert_eq!(payloads.len(), 5, "all five jobs must land verified");
    sched.shutdown();
    (strip_telemetry(&rendered), payloads)
}

#[test]
fn a_pinned_fault_plan_replays_byte_for_byte() {
    let (stats_a, payloads_a) = chaos_campaign("replay-a");
    let (stats_b, payloads_b) = chaos_campaign("replay-b");
    assert_eq!(
        stats_a, stats_b,
        "same (seed, plan) must replay to an identical stats snapshot"
    );
    assert_eq!(
        payloads_a, payloads_b,
        "healed results must be byte-identical across replays"
    );
}

#[test]
fn injected_panic_is_contained_and_retried_within_budget() {
    let plan = FaultPlan::parse("panic@1").unwrap();
    let faults = Arc::new(FaultInjector::new(1, plan));
    let backend = EchoBackend::new();
    let sched = Scheduler::with_config(
        ResultStore::new(tmp_dir("retry")).unwrap(),
        backend.clone(),
        SchedulerConfig {
            workers: 1,
            max_attempts: 2,
            faults: Some(faults),
            ..SchedulerConfig::default()
        },
    );
    let o = sched.submit(job("fig1"), Priority::Normal).unwrap();
    let snap = sched.wait(&o.key).unwrap();
    assert_eq!(snap.status, JobStatus::Done, "retry must absorb the panic");
    assert_eq!(snap.attempts, 2);
    assert_eq!(sched.stats().retries, 1);
    assert_eq!(sched.stats().failed, 0);
    assert_eq!(backend.execs.load(Ordering::SeqCst), 1, "panic fired before the backend ran");
}

#[test]
fn exhausted_retry_budget_fails_with_the_last_error() {
    let plan = FaultPlan::parse("error@1,error@2").unwrap();
    let faults = Arc::new(FaultInjector::new(1, plan));
    let sched = Scheduler::with_config(
        ResultStore::new(tmp_dir("budget")).unwrap(),
        EchoBackend::new(),
        SchedulerConfig {
            workers: 1,
            max_attempts: 2,
            faults: Some(faults),
            ..SchedulerConfig::default()
        },
    );
    let o = sched.submit(job("fig1"), Priority::Normal).unwrap();
    let snap = sched.wait(&o.key).unwrap();
    assert_eq!(snap.status, JobStatus::Failed);
    assert_eq!(snap.attempts, 2);
    assert_eq!(snap.error.as_deref(), Some("injected fault: execute error"));
    let stats = sched.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.failed, 1);
}

#[test]
fn the_watchdog_times_out_runaway_executions_and_rearms_the_key() {
    // One injected 400 ms stall against a 50 ms watchdog.
    let plan = FaultPlan::parse("delay@1:400").unwrap();
    let faults = Arc::new(FaultInjector::new(1, plan));
    let backend = EchoBackend::new();
    let sched = Scheduler::with_config(
        ResultStore::new(tmp_dir("watchdog")).unwrap(),
        backend.clone(),
        SchedulerConfig {
            workers: 1,
            job_timeout_ms: Some(50),
            faults: Some(faults),
            ..SchedulerConfig::default()
        },
    );
    let o = sched.submit(job("slow"), Priority::Normal).unwrap();
    let snap = sched.wait(&o.key).unwrap();
    assert_eq!(snap.status, JobStatus::TimedOut);
    assert!(
        snap.error.as_deref().unwrap_or("").contains("watchdog"),
        "timeout must say why: {:?}",
        snap.error
    );
    assert_eq!(sched.stats().timed_out, 1);

    // The key re-arms on resubmit (fault spent → fast path) and the
    // straggler's eventual completion cannot clobber the new round.
    let o2 = sched.submit(job("slow"), Priority::Normal).unwrap();
    assert!(!o2.deduped, "timed-out entries re-arm, not dedup");
    let snap = sched.wait(&o2.key).unwrap();
    assert_eq!(snap.status, JobStatus::Done);
    sched.shutdown();
}

#[test]
fn wait_timeout_returns_pending_instead_of_hanging() {
    let backend = EchoBackend::new();
    let sched = Scheduler::new(ResultStore::new(tmp_dir("waitto")).unwrap(), backend.clone(), 1);
    backend.hold_next();
    let o = sched.submit(job("gate"), Priority::Normal).unwrap();
    // Bounded wait on an in-flight job: answers Pending, promptly.
    let outcome = sched.wait_timeout(&o.key, Some(Duration::from_millis(40)));
    let WaitOutcome::Pending(snap) = outcome else {
        panic!("a held job must report Pending, got {outcome:?}");
    };
    assert!(!snap.status.is_terminal());
    backend.release();
    assert_eq!(sched.wait(&o.key).unwrap().status, JobStatus::Done);
    // Bounded wait on a terminal job: Terminal, no timeout taken.
    let outcome = sched.wait_timeout(&o.key, Some(Duration::from_millis(0)));
    assert!(matches!(outcome, WaitOutcome::Terminal(_)));
}

#[test]
fn a_cancelled_then_pruned_key_returns_instead_of_hanging() {
    let backend = EchoBackend::new();
    let sched = Scheduler::new(ResultStore::new(tmp_dir("prune")).unwrap(), backend.clone(), 1);
    backend.hold_next();
    let gate = sched.submit(job("gate"), Priority::Normal).unwrap();
    let doomed = sched.submit(job("doomed"), Priority::Normal).unwrap();
    assert!(sched.cancel(&doomed.key));
    assert_eq!(sched.wait(&doomed.key).unwrap().status, JobStatus::Cancelled);
    // Prune the terminal entry; the gate job (running) must survive.
    assert_eq!(sched.prune_terminal(), 1);
    assert!(sched.status(&doomed.key).is_none(), "pruned entry is gone");
    // The PR 8 bug: wait on such a key parked forever. Now it answers.
    assert!(sched.wait(&doomed.key).is_none());
    assert!(matches!(
        sched.wait_timeout(&doomed.key, None),
        WaitOutcome::Unknown
    ));
    backend.release();
    assert_eq!(sched.wait(&gate.key).unwrap().status, JobStatus::Done);
}

#[test]
fn the_admission_gate_defers_jobs_past_the_memory_budget() {
    // Each job claims 64 MiB against a 100 MiB budget: with 2 workers
    // only one job may run at a time, but progress is guaranteed.
    let backend = EchoBackend::with_admission(64 << 20);
    let sched = Scheduler::with_config(
        ResultStore::new(tmp_dir("admission")).unwrap(),
        backend.clone(),
        SchedulerConfig {
            workers: 2,
            mem_budget_bytes: Some(100 << 20),
            ..SchedulerConfig::default()
        },
    );
    backend.hold_next();
    let first = sched.submit(job("big1"), Priority::Normal).unwrap();
    // Wait until the first job occupies the budget.
    while sched.status(&first.key).map(|s| s.status) != Some(JobStatus::Running) {
        std::thread::yield_now();
    }
    let second = sched.submit(job("big2"), Priority::Normal).unwrap();
    // The second worker is idle but must not dispatch big2 over budget.
    let outcome = sched.wait_timeout(&second.key, Some(Duration::from_millis(60)));
    let WaitOutcome::Pending(snap) = outcome else {
        panic!("big2 must stay deferred while big1 runs, got {outcome:?}");
    };
    assert_eq!(snap.status, JobStatus::Queued, "deferred means still queued");
    backend.release();
    // Capacity frees → big2 admits and completes.
    assert_eq!(sched.wait(&second.key).unwrap().status, JobStatus::Done);
    assert_eq!(sched.wait(&first.key).unwrap().status, JobStatus::Done);
    assert!(
        sched.stats().admission_deferred >= 1,
        "the deferral must be counted"
    );
}

#[test]
fn concurrent_readers_never_observe_torn_bytes_during_repair() {
    // N readers hammer `probe` while one thread tampers with the entry
    // and another re-publishes it: every successful read must return
    // the verified old bytes or the verified new bytes, never a torn
    // mix — the checksum table is what makes repair safe under load.
    let store = Arc::new(ResultStore::new(tmp_dir("repair")).unwrap());
    let j = job("fig1");
    let key = JobKey::derive(&j, &[("ds8".to_string(), 0xF00D)]);
    let old_bytes = b"{\"result\":\"old\"}".to_vec();
    let new_bytes = b"{\"result\":\"new\"}".to_vec();
    let publish = |bytes: &Vec<u8>| {
        let m = manifest_for(&key, "canon".into(), j.clone(), Vec::new());
        store
            .publish(m, &[("fig1.json".to_string(), bytes.clone())])
            .map(|_| ())
    };
    publish(&old_bytes).unwrap();

    let stop = AtomicBool::new(false);
    let torn_seen = AtomicU64::new(0);
    let verified_reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        // 4 hammering readers.
        for _ in 0..4 {
            s.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    if let Some(hit) = store.probe(&key) {
                        let bytes = &hit.files[0].1;
                        if bytes != &old_bytes && bytes != &new_bytes {
                            torn_seen.fetch_add(1, Ordering::SeqCst);
                        }
                        verified_reads.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        // One tamper thread: repeatedly corrupt the live payload
        // in-place (same length, wrong bytes — the nastiest case).
        s.spawn(|| {
            for _ in 0..50 {
                let path = store.root().join(key.as_str()).join("fig1.json");
                let _ = std::fs::write(&path, b"{\"result\":\"bad\"}");
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // One repair thread: re-execute (re-publish the new bytes)
        // whenever the entry has been quarantined away.
        s.spawn(|| {
            for _ in 0..200 {
                if store.probe(&key).is_none() {
                    let _ = publish(&new_bytes);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::SeqCst);
        });
    });
    assert_eq!(
        torn_seen.load(Ordering::SeqCst),
        0,
        "a verified read returned bytes that were neither old nor new"
    );
    assert!(
        verified_reads.load(Ordering::SeqCst) > 0,
        "the readers must have seen verified data at least once"
    );
    // After the dust settles the entry heals to verified new bytes.
    if store.probe(&key).is_none() {
        publish(&new_bytes).unwrap();
    }
    assert_eq!(store.probe(&key).unwrap().files[0].1, new_bytes);
}
