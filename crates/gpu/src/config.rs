//! GPU execution parameters.

use cxlg_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// GPU model configuration (defaults describe the paper's RTX A5000).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Hardware warp capacity (§3.5.2: "The GPU we use has 3,072 warps").
    pub total_warps: u32,
    /// Warps actually resident during traversal kernels (§3.5.2: "in our
    /// BFS execution, we find that 2,048 warps are running").
    pub active_warps: u32,
    /// GPU cache-line size in bytes — the maximum zero-copy transaction
    /// (§3.3.1: "up to the GPU's hardware cache line size of 128 B").
    pub line_bytes: u64,
    /// Memory sector size in bytes — the zero-copy request granularity
    /// (§3.3.1: "requests are issued at a multiple of 32 B").
    pub sector_bytes: u64,
    /// Per-work-item compute cost (edge examination, frontier update).
    /// The paper's workloads are transfer-bound, so this is small; a
    /// non-zero value avoids zero-time scheduling artifacts.
    pub item_compute_ps: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            total_warps: 3072,
            active_warps: 2048,
            line_bytes: 128,
            sector_bytes: 32,
            item_compute_ps: 20_000, // 20 ns
        }
    }
}

impl GpuConfig {
    /// Per-item compute as a duration.
    pub fn item_compute(&self) -> SimDuration {
        SimDuration::from_ps(self.item_compute_ps)
    }

    /// Restrict the number of active warps (the warp-count ablation).
    pub fn with_active_warps(mut self, warps: u32) -> Self {
        assert!(warps >= 1);
        self.active_warps = warps.min(self.total_warps);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let g = GpuConfig::default();
        assert_eq!(g.total_warps, 3072);
        assert_eq!(g.active_warps, 2048);
        assert_eq!(g.line_bytes, 128);
        assert_eq!(g.sector_bytes, 32);
        assert!(g.active_warps as u64 > 768, "§3.5.2: warps > Nmax");
    }

    #[test]
    fn active_warps_clamped_to_total() {
        let g = GpuConfig::default().with_active_warps(100_000);
        assert_eq!(g.active_warps, 3072);
        let g = GpuConfig::default().with_active_warps(64);
        assert_eq!(g.active_warps, 64);
    }
}
