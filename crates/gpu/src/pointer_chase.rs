//! The pointer-chasing latency microbenchmark of Appendix B.
//!
//! "We allocate a 16-GB block of CXL memory and fill it with 134 million
//! 128-B indices (or pointers) each pointing to the next address to look
//! at. We run a single GPU warp to chase them … The pointers are set in
//! such a way that the GPU has to move randomly in the 16-GB space." Each
//! hop is a dependent 128 B load, so the run time divided by the hop count
//! is the GPU-observed memory latency (Figure 9).
//!
//! We generate the same structure lazily: a pseudo-random permutation walk
//! over 128 B-aligned slots, without materializing the region.

use cxlg_sim::Xoshiro256StarStar;

/// Pointer stride — each pointer occupies 128 B (Appendix B).
pub const POINTER_BYTES: u64 = 128;

/// A deterministic random walk over a region of 128 B pointer slots.
#[derive(Debug, Clone)]
pub struct PointerChase {
    region_bytes: u64,
    rng: Xoshiro256StarStar,
    current: u64,
    hops: u64,
}

impl PointerChase {
    /// Walk over a region of `region_bytes` (must hold at least two
    /// pointers), starting from slot 0.
    pub fn new(region_bytes: u64, seed: u64) -> Self {
        assert!(
            region_bytes >= 2 * POINTER_BYTES,
            "region too small for pointer chasing"
        );
        PointerChase {
            region_bytes,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            current: 0,
            hops: 0,
        }
    }

    /// Number of pointer slots in the region.
    pub fn slots(&self) -> u64 {
        self.region_bytes / POINTER_BYTES
    }

    /// Address of the next dependent load. Never returns the same slot
    /// twice in a row (a self-pointing pointer would end the chase).
    pub fn next_addr(&mut self) -> u64 {
        let slots = self.slots();
        let mut next = self.rng.next_below(slots);
        if next == self.current {
            next = (next + 1) % slots;
        }
        self.current = next;
        self.hops += 1;
        next * POINTER_BYTES
    }

    /// Hops taken so far.
    pub fn hops(&self) -> u64 {
        self.hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_pointer_aligned_and_in_range() {
        let mut pc = PointerChase::new(1 << 20, 1);
        for _ in 0..10_000 {
            let a = pc.next_addr();
            assert_eq!(a % POINTER_BYTES, 0);
            assert!(a < 1 << 20);
        }
        assert_eq!(pc.hops(), 10_000);
    }

    #[test]
    fn no_consecutive_repeats() {
        let mut pc = PointerChase::new(4 * POINTER_BYTES, 7);
        let mut prev = u64::MAX;
        for _ in 0..1000 {
            let a = pc.next_addr();
            assert_ne!(a, prev, "chase stalled on a self-pointer");
            prev = a;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PointerChase::new(1 << 16, 42);
        let mut b = PointerChase::new(1 << 16, 42);
        for _ in 0..100 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
        let mut c = PointerChase::new(1 << 16, 43);
        let diffs = (0..100).filter(|_| a.next_addr() != c.next_addr()).count();
        assert!(diffs > 50);
    }

    #[test]
    fn walk_covers_the_region() {
        let mut pc = PointerChase::new(64 * POINTER_BYTES, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(pc.next_addr());
        }
        assert!(seen.len() > 50, "only {} of 64 slots visited", seen.len());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_degenerate_region() {
        PointerChase::new(POINTER_BYTES, 1);
    }
}
