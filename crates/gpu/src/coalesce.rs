//! The 32 B-sector coalescer behind EMOGI's zero-copy access pattern.
//!
//! §3.3.1 of the paper: EMOGI issues zero-copy reads "at a multiple of
//! 32 B up to the GPU's hardware cache line size of 128 B", and cleverly
//! arranges the reads "so that the GPU merges them into a larger size when
//! an edge sublist spans multiple of 32 B alignments" \[14\]. The resulting
//! request-size distribution over 32/64/96/128 B determines the average
//! transfer size `d_EMOGI` (their conservative estimate: 20/20/20/40 % ⇒
//! 89.6 B), which in turn sets the latency budget through Equation 6.
//!
//! [`coalesce_span`] reproduces the hardware rule: a byte span is clipped
//! to 128 B-aligned lines, and within each line the covered 32 B sectors
//! form one transaction.

use cxlg_graph::layout::{align_down, ByteSpan};
use serde::{Deserialize, Serialize};

/// One coalesced memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Sector-aligned start address.
    pub addr: u64,
    /// Transaction size (a multiple of the sector size, at most one line).
    pub bytes: u64,
}

/// Split `span` into per-line transactions of whole sectors.
///
/// Calls `f` once per transaction, in address order. `line` and `sector`
/// must be powers of two with `sector <= line`.
pub fn coalesce_span(span: ByteSpan, line: u64, sector: u64, mut f: impl FnMut(Transaction)) {
    debug_assert!(line.is_power_of_two() && sector.is_power_of_two());
    debug_assert!(sector <= line);
    if span.is_empty() {
        return;
    }
    let mut cur = align_down(span.offset, sector);
    let end = span.end();
    while cur < end {
        let line_end = align_down(cur, line) + line;
        let stop = line_end.min(end);
        // Whole sectors covering [cur, stop).
        let bytes = (stop - cur + sector - 1) / sector * sector;
        f(Transaction { addr: cur, bytes });
        cur += bytes;
        // `bytes` never overruns the line: stop <= line_end and cur was
        // sector-aligned, so cur + bytes <= line_end.
        debug_assert!(cur <= line_end);
    }
}

/// Collect transactions into a vector (testing / tracing convenience).
pub fn coalesce_span_vec(span: ByteSpan, line: u64, sector: u64) -> Vec<Transaction> {
    let mut v = Vec::new();
    coalesce_span(span, line, sector, |t| v.push(t));
    v
}

/// Histogram of transaction sizes, for validating the EMOGI request mix.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransactionMix {
    /// `counts[k]` counts transactions of `(k + 1) * sector` bytes.
    counts: Vec<u64>,
    sector: u64,
    total_bytes: u64,
}

impl TransactionMix {
    /// Empty mix for a given sector/line geometry.
    pub fn new(line: u64, sector: u64) -> Self {
        TransactionMix {
            counts: vec![0; (line / sector) as usize],
            sector,
            total_bytes: 0,
        }
    }

    /// Record one transaction.
    pub fn record(&mut self, t: Transaction) {
        let idx = (t.bytes / self.sector) as usize - 1;
        self.counts[idx] += 1;
        self.total_bytes += t.bytes;
    }

    /// Total transactions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of transactions of exactly `bytes`.
    pub fn fraction(&self, bytes: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let idx = (bytes / self.sector) as usize - 1;
        self.counts.get(idx).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Average transaction size in bytes (the paper's `d`).
    pub fn mean_bytes(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.total_bytes as f64 / total as f64
    }
}

/// The paper's assumed EMOGI distribution (§3.3.1): 32/64/96/128 B at
/// 20/20/20/40 %, averaging 89.6 B.
pub fn paper_emogi_mean_bytes() -> f64 {
    0.2 * 32.0 + 0.2 * 64.0 + 0.2 * 96.0 + 0.4 * 128.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(offset: u64, len: u64) -> ByteSpan {
        ByteSpan { offset, len }
    }

    #[test]
    fn paper_average_is_89_6() {
        assert!((paper_emogi_mean_bytes() - 89.6).abs() < 1e-9);
    }

    #[test]
    fn empty_span_produces_nothing() {
        assert!(coalesce_span_vec(span(100, 0), 128, 32).is_empty());
    }

    #[test]
    fn aligned_line_is_one_transaction() {
        let ts = coalesce_span_vec(span(256, 128), 128, 32);
        assert_eq!(ts, vec![Transaction { addr: 256, bytes: 128 }]);
    }

    #[test]
    fn sublist_within_one_sector() {
        // 8 bytes at offset 4 -> one 32 B sector read (sector-aligned).
        let ts = coalesce_span_vec(span(4, 8), 128, 32);
        assert_eq!(ts, vec![Transaction { addr: 0, bytes: 32 }]);
    }

    #[test]
    fn span_crossing_line_boundary_splits() {
        // Bytes [96, 160): sectors 96..128 in line 0, 128..160 in line 1.
        let ts = coalesce_span_vec(span(96, 64), 128, 32);
        assert_eq!(
            ts,
            vec![
                Transaction { addr: 96, bytes: 32 },
                Transaction { addr: 128, bytes: 32 },
            ]
        );
    }

    #[test]
    fn mid_line_start_produces_96b_then_full_lines() {
        // A 256 B sublist starting 32 B into a line: 96 B + 128 B + 32 B.
        let ts = coalesce_span_vec(span(32, 256), 128, 32);
        assert_eq!(
            ts,
            vec![
                Transaction { addr: 32, bytes: 96 },
                Transaction { addr: 128, bytes: 128 },
                Transaction { addr: 256, bytes: 32 },
            ]
        );
        let total: u64 = ts.iter().map(|t| t.bytes).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn transactions_never_exceed_line_or_misalign() {
        for offset in [0u64, 8, 16, 24, 40, 100, 120, 250] {
            for len in [8u64, 16, 40, 100, 256, 1000] {
                for t in coalesce_span_vec(span(offset, len), 128, 32) {
                    assert_eq!(t.addr % 32, 0, "unaligned addr {}", t.addr);
                    assert!(t.bytes >= 32 && t.bytes <= 128);
                    assert_eq!(t.bytes % 32, 0);
                    // Stays within one line.
                    assert_eq!(t.addr / 128, (t.addr + t.bytes - 1) / 128);
                }
            }
        }
    }

    #[test]
    fn coverage_includes_whole_span() {
        let s = span(100, 500);
        let ts = coalesce_span_vec(s, 128, 32);
        let lo = ts.first().unwrap().addr;
        let hi = ts.last().map(|t| t.addr + t.bytes).unwrap();
        assert!(lo <= s.offset);
        assert!(hi >= s.end());
        // Transactions are contiguous and non-overlapping.
        for w in ts.windows(2) {
            assert_eq!(w[0].addr + w[0].bytes, w[1].addr);
        }
    }

    #[test]
    fn mix_statistics() {
        let mut mix = TransactionMix::new(128, 32);
        coalesce_span(span(32, 256), 128, 32, |t| mix.record(t));
        assert_eq!(mix.total(), 3);
        assert!((mix.fraction(96) - 1.0 / 3.0).abs() < 1e-12);
        assert!((mix.fraction(128) - 1.0 / 3.0).abs() < 1e-12);
        assert!((mix.fraction(32) - 1.0 / 3.0).abs() < 1e-12);
        assert!((mix.mean_bytes() - 256.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn random_sublists_average_lands_near_paper_estimate() {
        // Random 256 B sublists at random 8 B-aligned offsets (urand's
        // average degree): the mean transaction size should be on the
        // order of the paper's 89.6 B estimate.
        let mut mix = TransactionMix::new(128, 32);
        let mut state = 99u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let offset = (state >> 20) % 100_000 * 8;
            coalesce_span(span(offset, 256), 128, 32, |t| mix.record(t));
        }
        let mean = mix.mean_bytes();
        assert!(
            (80.0..128.0).contains(&mean),
            "mean transaction {mean} B out of plausible EMOGI range"
        );
    }
}
