//! # cxlg-gpu — GPU execution model
//!
//! The paper reduces the GPU to the properties that matter for
//! external-memory graph traversal (§3.3.1, §3.5.2): it keeps thousands of
//! warps' worth of requests in flight (3,072 warps on the RTX A5000, of
//! which ~2,048 are active during BFS), it accesses memory in 32 B sectors
//! merged into at most 128 B cache-line transactions (the EMOGI zero-copy
//! path), and — for storage backends — it can run a software cache in its
//! onboard memory (BaM) or drive submission queues placed in BAR-mapped
//! GPU memory (BaM / XLFDD). This crate implements exactly those pieces:
//!
//! * [`config::GpuConfig`] — warp counts and per-item processing cost;
//! * [`coalesce`] — the 32 B-sector coalescer that produces EMOGI's
//!   32/64/96/128 B request mix (average 89.6 B in §3.3.1);
//! * [`swcache`] — BaM's set-associative GPU-memory software cache;
//! * [`bar`] — submission-queue cost model for GPU-initiated storage
//!   access (XLFDD has no completion queues, §4.1.1);
//! * [`pointer_chase`] — the Appendix-B latency microbenchmark;
//! * [`uvm`] — the unified-virtual-memory paging baseline that EMOGI's
//!   zero-copy access supersedes (Related Work, §6);
//! * [`warp`] — warp pool bookkeeping for the DES driver.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bar;
pub mod coalesce;
pub mod config;
pub mod pointer_chase;
pub mod swcache;
pub mod uvm;
pub mod warp;

pub use bar::SubmissionQueueModel;
pub use coalesce::{coalesce_span, Transaction, TransactionMix};
pub use config::GpuConfig;
pub use pointer_chase::PointerChase;
pub use swcache::{AccessOutcome, SoftwareCache, SoftwareCacheConfig};
pub use uvm::{UvmAccess, UvmConfig, UvmPageTable};
pub use warp::WarpPool;
