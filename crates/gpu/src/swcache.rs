//! BaM-style software cache in GPU onboard memory.
//!
//! §3.3.2: "BaM implements a software cache on the GPU memory and reads
//! data at a cache line granularity", so its transfer size equals its
//! alignment (`d = a`). §3.1 notes the paper's RAF numbers come from "CPU
//! simulation implementing a software cache to experiment with alignment
//! sizes without hardware constraints" — this module is that simulation:
//! a set-associative cache with per-set LRU, configurable line size (the
//! alignment `a`) and capacity.

use serde::{Deserialize, Serialize};

/// Software cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareCacheConfig {
    /// Total capacity in bytes (GPU memory budget; BaM dedicates most of
    /// the onboard memory to this).
    pub capacity_bytes: u64,
    /// Cache line size = the access alignment `a`.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: u32,
}

impl SoftwareCacheConfig {
    /// Standard geometry: 16-way, given capacity and line size.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> Self {
        SoftwareCacheConfig {
            capacity_bytes,
            line_bytes,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry (at least 1).
    pub fn num_sets(&self) -> u64 {
        (self.capacity_bytes / self.line_bytes / self.ways as u64).max(1)
    }

    /// Lines held at capacity.
    pub fn num_lines(&self) -> u64 {
        self.num_sets() * self.ways as u64
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line already resident.
    Hit,
    /// Line fetched; an older line may have been evicted.
    Miss {
        /// Evicted line ID, if the set was full.
        evicted: Option<u64>,
    },
}

/// Set-associative software cache over abstract line IDs
/// (`line_id = byte_offset / line_bytes`).
#[derive(Debug, Clone)]
pub struct SoftwareCache {
    cfg: SoftwareCacheConfig,
    /// Per-set LRU stacks, most-recent first. Sets are short (`ways`), so
    /// a Vec with rotate is faster than linked structures.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SoftwareCache {
    /// Build an empty cache.
    pub fn new(cfg: SoftwareCacheConfig) -> Self {
        let sets = (0..cfg.num_sets())
            .map(|_| Vec::with_capacity(cfg.ways as usize))
            .collect();
        SoftwareCache {
            cfg,
            sets,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> &SoftwareCacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        // Avalanche the line ID so strided access patterns spread over
        // sets, as BaM's hash-partitioned cache does.
        let mut z = line.wrapping_mul(0x9E3779B97F4A7C15);
        z ^= z >> 29;
        (z % self.sets.len() as u64) as usize
    }

    /// Touch `line`; returns whether it hit and what was evicted.
    pub fn access(&mut self, line: u64) -> AccessOutcome {
        let ways = self.cfg.ways as usize;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            // Move to MRU position.
            set[..=pos].rotate_right(1);
            self.hits += 1;
            return AccessOutcome::Hit;
        }
        self.misses += 1;
        let evicted = if set.len() >= ways {
            let victim = set.pop();
            self.evictions += 1;
            victim
        } else {
            None
        };
        set.insert(0, line);
        AccessOutcome::Miss { evicted }
    }

    /// Is `line` currently resident (no LRU update)?
    pub fn contains(&self, line: u64) -> bool {
        let set = &self.sets[self.set_of(line)];
        set.contains(&line)
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far (each miss = one line fetch of `line_bytes`).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes fetched from the backing device (`misses * line_bytes`).
    pub fn fetched_bytes(&self) -> u64 {
        self.misses * self.cfg.line_bytes
    }

    /// Hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop all contents, keep counters.
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(lines: u64, ways: u32, line_bytes: u64) -> SoftwareCache {
        SoftwareCache::new(SoftwareCacheConfig {
            capacity_bytes: lines * line_bytes,
            line_bytes,
            ways,
        })
    }

    #[test]
    fn geometry_math() {
        let cfg = SoftwareCacheConfig::new(1 << 20, 4096);
        assert_eq!(cfg.num_lines(), 256);
        assert_eq!(cfg.num_sets(), 16);
        assert_eq!(cfg.ways, 16);
        // Degenerate tiny capacity still has one set.
        let tiny = SoftwareCacheConfig::new(4096, 4096);
        assert_eq!(tiny.num_sets(), 1);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small(64, 4, 4096);
        assert!(matches!(c.access(7), AccessOutcome::Miss { evicted: None }));
        assert_eq!(c.access(7), AccessOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!(c.contains(7));
        assert!(!c.contains(8));
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        // Single set, 2 ways: A, B, touch A, insert C -> evicts B.
        let mut c = small(2, 2, 4096);
        c.access(1);
        c.access(2);
        c.access(1); // A is now MRU
        match c.access(3) {
            AccessOutcome::Miss { evicted: Some(v) } => assert_eq!(v, 2),
            other => panic!("expected eviction of 2, got {other:?}"),
        }
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn fetched_bytes_counts_misses_times_line() {
        let mut c = small(1024, 16, 512);
        for line in 0..100 {
            c.access(line);
        }
        assert_eq!(c.fetched_bytes(), 100 * 512);
        assert_eq!(c.hit_rate(), 0.0);
        for line in 0..100 {
            c.access(line);
        }
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small(64, 16, 4096);
        // Cycle through 4x capacity twice: second pass mostly misses.
        for _ in 0..2 {
            for line in 0..256u64 {
                c.access(line);
            }
        }
        assert!(
            c.hit_rate() < 0.2,
            "LRU cycling should thrash, hit rate {}",
            c.hit_rate()
        );
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = small(256, 16, 4096);
        for pass in 0..4 {
            for line in 0..128u64 {
                let out = c.access(line);
                if pass > 0 {
                    assert_eq!(out, AccessOutcome::Hit, "pass {pass} line {line}");
                }
            }
        }
    }

    #[test]
    fn invalidate_clears_contents_keeps_counters() {
        let mut c = small(64, 4, 4096);
        c.access(1);
        c.access(1);
        c.invalidate_all();
        assert!(!c.contains(1));
        assert_eq!(c.hits(), 1);
        assert!(matches!(c.access(1), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn strided_lines_spread_over_sets() {
        // Power-of-two strides are the classic set-conflict pathology;
        // the hashed indexing should keep the conflict-miss rate low.
        let mut c = small(1024, 16, 4096);
        let stride = 64u64; // would all land in one set without hashing
        for rep in 0..4 {
            for i in 0..512u64 {
                let out = c.access(i * stride);
                if rep > 0 {
                    // Working set (512 lines) is half of capacity: after
                    // warmup nearly everything should hit.
                    let _ = out;
                }
            }
        }
        assert!(
            c.hit_rate() > 0.6,
            "hashed sets should avoid stride conflicts, hit rate {}",
            c.hit_rate()
        );
    }
}
