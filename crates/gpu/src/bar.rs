//! Submission-queue cost model for GPU-initiated storage access.
//!
//! §4.1.1: "As with BaM, we place submission queues (SQs) and data buffers
//! in the base address register (BAR) section of the GPU memory in order
//! to control storage devices directly from the GPU. Note that we do not
//! have completion queues \[42\]." The GPU writes an SQ entry; the drive
//! fetches it from BAR memory and later DMAs the payload back into the
//! BAR data buffer. The costs that matter to the simulation are the SQ
//! entry's traversal of the PCIe request path and the per-drive queue
//! depth that bounds storage concurrency (§3.2: for storage "the limit
//! comes from the queue depth of the storage interface, which is
//! typically much larger than Nmax when multiple drives are used").

use serde::{Deserialize, Serialize};

/// Submission queue parameters for one storage interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmissionQueueModel {
    /// Bytes per SQ entry crossing the link when the drive fetches it
    /// (NVMe: 64 B commands; XLFDD's lightweight interface: 16 B).
    pub entry_bytes: u64,
    /// Completion notification bytes crossing the link. XLFDD has **no
    /// completion queues** — the payload DMA itself signals completion —
    /// so this is 0; NVMe posts a 16 B CQ entry.
    pub completion_bytes: u64,
    /// Queue depth per drive (outstanding commands the drive accepts).
    pub queue_depth_per_drive: u32,
}

impl SubmissionQueueModel {
    /// BaM's NVMe queues: 64 B SQ entries, 16 B CQ entries, deep queues.
    pub fn nvme() -> Self {
        SubmissionQueueModel {
            entry_bytes: 64,
            completion_bytes: 16,
            queue_depth_per_drive: 1024,
        }
    }

    /// XLFDD's lightweight interface: small SQ entries, no CQ (§4.1.1).
    pub fn xlfdd() -> Self {
        SubmissionQueueModel {
            entry_bytes: 16,
            completion_bytes: 0,
            queue_depth_per_drive: 1024,
        }
    }

    /// Total storage concurrency with `drives` drives.
    pub fn total_depth(&self, drives: u32) -> u64 {
        self.queue_depth_per_drive as u64 * drives as u64
    }

    /// Request-path overhead bytes per command (SQ fetch).
    pub fn request_overhead_bytes(&self) -> u64 {
        self.entry_bytes
    }

    /// Response-path overhead bytes per command (CQ post, if any).
    pub fn response_overhead_bytes(&self) -> u64 {
        self.completion_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxlg_link::pcie::PcieGen;

    #[test]
    fn xlfdd_has_no_completion_queue() {
        let sq = SubmissionQueueModel::xlfdd();
        assert_eq!(sq.response_overhead_bytes(), 0);
        assert_eq!(sq.entry_bytes, 16);
    }

    #[test]
    fn nvme_entries_are_64_bytes() {
        let sq = SubmissionQueueModel::nvme();
        assert_eq!(sq.request_overhead_bytes(), 64);
        assert_eq!(sq.response_overhead_bytes(), 16);
    }

    #[test]
    fn storage_concurrency_exceeds_pcie_nmax() {
        // §3.2: storage queue depth >> Nmax with multiple drives.
        let sq = SubmissionQueueModel::xlfdd();
        assert!(sq.total_depth(16) > PcieGen::Gen4.nmax_outstanding());
        let nvme = SubmissionQueueModel::nvme();
        assert!(nvme.total_depth(4) > PcieGen::Gen4.nmax_outstanding());
    }

    #[test]
    fn xlfdd_overheads_are_lighter_than_nvme() {
        let x = SubmissionQueueModel::xlfdd();
        let n = SubmissionQueueModel::nvme();
        assert!(
            x.request_overhead_bytes() + x.response_overhead_bytes()
                < n.request_overhead_bytes() + n.response_overhead_bytes()
        );
    }
}
