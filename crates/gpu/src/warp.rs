//! Warp pool bookkeeping for the discrete-event driver.
//!
//! The traversal engines model the GPU as `active_warps` independent
//! workers, each either processing a work item, waiting on a memory
//! request, or idle. The pool hands out warp slots and tracks how many
//! were ever concurrently busy — §3.5.2's argument is that this
//! concurrency (2,048) comfortably exceeds the PCIe limit (`Nmax = 768`),
//! so the GPU is never the bottleneck; the ablation benches revisit that
//! claim with smaller pools.

/// Identifier of a warp slot.
pub type WarpId = u32;

/// A fixed pool of warp slots with an idle free-list.
#[derive(Debug, Clone)]
pub struct WarpPool {
    free: Vec<WarpId>,
    capacity: u32,
    busy_high_water: u32,
}

impl WarpPool {
    /// Pool of `capacity` warps, all idle.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity >= 1, "need at least one warp");
        WarpPool {
            free: (0..capacity).rev().collect(),
            capacity,
            busy_high_water: 0,
        }
    }

    /// Take an idle warp, if any.
    pub fn acquire(&mut self) -> Option<WarpId> {
        let id = self.free.pop()?;
        self.busy_high_water = self.busy_high_water.max(self.busy());
        Some(id)
    }

    /// Return a warp to the idle pool.
    pub fn release(&mut self, id: WarpId) {
        debug_assert!(id < self.capacity, "foreign warp id");
        debug_assert!(!self.free.contains(&id), "double release of warp {id}");
        self.free.push(id);
    }

    /// Total warp slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Currently busy warps.
    pub fn busy(&self) -> u32 {
        self.capacity - self.free.len() as u32
    }

    /// Currently idle warps.
    pub fn idle(&self) -> u32 {
        self.free.len() as u32
    }

    /// Maximum concurrently busy warps observed.
    pub fn busy_high_water(&self) -> u32 {
        self.busy_high_water
    }

    /// Are all warps idle?
    pub fn all_idle(&self) -> bool {
        self.free.len() as u32 == self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut p = WarpPool::new(4);
        assert!(p.all_idle());
        let a = p.acquire().unwrap();
        let b = p.acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(p.busy(), 2);
        assert_eq!(p.idle(), 2);
        p.release(a);
        assert_eq!(p.busy(), 1);
        p.release(b);
        assert!(p.all_idle());
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut p = WarpPool::new(2);
        assert!(p.acquire().is_some());
        assert!(p.acquire().is_some());
        assert!(p.acquire().is_none());
        assert_eq!(p.busy(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut p = WarpPool::new(8);
        let ids: Vec<_> = (0..5).map(|_| p.acquire().unwrap()).collect();
        for id in ids {
            p.release(id);
        }
        assert_eq!(p.busy_high_water(), 5);
        assert!(p.all_idle());
    }

    #[test]
    fn ids_are_unique_while_held() {
        let mut p = WarpPool::new(100);
        let mut held = std::collections::HashSet::new();
        while let Some(id) = p.acquire() {
            assert!(held.insert(id), "duplicate id {id}");
        }
        assert_eq!(held.len(), 100);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double release")]
    fn double_release_is_caught_in_debug() {
        let mut p = WarpPool::new(2);
        let a = p.acquire().unwrap();
        p.release(a);
        p.release(a);
    }
}
