//! Unified-virtual-memory (UVM) access model — the baseline EMOGI
//! supersedes.
//!
//! Related Work (§6): *"These methods are based on a unified virtual
//! memory (UVM) approach where portions of the host DRAM are copied to
//! the GPU memory via paging at a 4 kB granularity \[15\]. EMOGI instead
//! uses zero-copy access and has shown that this fine-grained direct
//! access significantly reduces the RAF compared with the UVM
//! approach."*
//!
//! The model: GPU-resident pages are tracked in a page table with LRU
//! eviction (GPU memory budget); a touched non-resident page triggers a
//! **page fault** — a fixed fault-handling overhead (driver + TLB
//! shootdown work on the order of tens of microseconds for a fault
//! batch; we charge a per-page cost) plus a 4 kB page migration over the
//! link. Faults are also *synchronous* per warp, which is what makes UVM
//! thrash on random access.

use crate::swcache::{AccessOutcome, SoftwareCache, SoftwareCacheConfig};
use cxlg_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// UVM paging parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UvmConfig {
    /// Migration granularity (4 kB pages, \[15\]).
    pub page_bytes: u64,
    /// GPU memory devoted to migrated pages.
    pub resident_bytes: u64,
    /// Fault-handling overhead per faulted page, in ps (driver runtime,
    /// not including the data transfer itself). GPU page-fault handling
    /// costs ~20–45 µs per fault group; amortized per page we default to
    /// 15 µs.
    pub fault_overhead_ps: u64,
}

impl Default for UvmConfig {
    fn default() -> Self {
        UvmConfig {
            page_bytes: 4096,
            resident_bytes: 1 << 30,
            fault_overhead_ps: 15_000_000,
        }
    }
}

impl UvmConfig {
    /// The per-page fault overhead as a duration.
    pub fn fault_overhead(&self) -> SimDuration {
        SimDuration::from_ps(self.fault_overhead_ps)
    }
}

/// Outcome of touching one page through the UVM layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UvmAccess {
    /// Page already resident in GPU memory.
    Resident,
    /// Page fault: migrate `page_bytes` and pay the fault overhead.
    Fault,
}

/// The UVM page table: residency tracking with LRU eviction, implemented
/// over the same set-associative structure as the software cache (the
/// driver's own page tables are fully associative, but at thousands of
/// pages the difference is negligible and the hashed sets keep it fast).
#[derive(Debug, Clone)]
pub struct UvmPageTable {
    cfg: UvmConfig,
    table: SoftwareCache,
    faults: u64,
    touches: u64,
}

impl UvmPageTable {
    /// Empty page table.
    pub fn new(cfg: UvmConfig) -> Self {
        UvmPageTable {
            table: SoftwareCache::new(SoftwareCacheConfig::new(
                cfg.resident_bytes,
                cfg.page_bytes,
            )),
            cfg,
            faults: 0,
            touches: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UvmConfig {
        &self.cfg
    }

    /// Touch the page containing byte `addr`.
    pub fn touch(&mut self, addr: u64) -> UvmAccess {
        self.touches += 1;
        match self.table.access(addr / self.cfg.page_bytes) {
            AccessOutcome::Hit => UvmAccess::Resident,
            AccessOutcome::Miss { .. } => {
                self.faults += 1;
                UvmAccess::Fault
            }
        }
    }

    /// Page faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Page touches so far.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Bytes migrated so far.
    pub fn migrated_bytes(&self) -> u64 {
        self.faults * self.cfg.page_bytes
    }

    /// Fault rate over all touches.
    pub fn fault_rate(&self) -> f64 {
        if self.touches == 0 {
            0.0
        } else {
            self.faults as f64 / self.touches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(resident_pages: u64) -> UvmPageTable {
        UvmPageTable::new(UvmConfig {
            resident_bytes: resident_pages * 4096,
            ..UvmConfig::default()
        })
    }

    #[test]
    fn first_touch_faults_second_is_resident() {
        let mut pt = small(64);
        assert_eq!(pt.touch(5000), UvmAccess::Fault);
        assert_eq!(pt.touch(5001), UvmAccess::Resident);
        assert_eq!(pt.touch(4096), UvmAccess::Resident, "same page");
        assert_eq!(pt.touch(8192), UvmAccess::Fault, "next page");
        assert_eq!(pt.faults(), 2);
        assert_eq!(pt.touches(), 4);
        assert_eq!(pt.migrated_bytes(), 8192);
    }

    #[test]
    fn working_set_beyond_residency_thrashes() {
        let mut pt = small(32);
        // Touch 4x the resident capacity, twice.
        for _ in 0..2 {
            for page in 0..128u64 {
                pt.touch(page * 4096);
            }
        }
        assert!(
            pt.fault_rate() > 0.8,
            "UVM should thrash on an oversized working set: {}",
            pt.fault_rate()
        );
    }

    #[test]
    fn working_set_within_residency_settles() {
        let mut pt = small(256);
        for _ in 0..4 {
            for page in 0..64u64 {
                pt.touch(page * 4096);
            }
        }
        // 64 cold faults out of 256 touches.
        assert_eq!(pt.faults(), 64);
        assert!((pt.fault_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn default_fault_overhead_is_tens_of_microseconds() {
        let cfg = UvmConfig::default();
        let us = cfg.fault_overhead().as_us_f64();
        assert!((5.0..50.0).contains(&us), "{us}");
        assert_eq!(cfg.page_bytes, 4096);
    }
}
