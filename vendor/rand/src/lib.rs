//! Offline stand-in for `rand` 0.8, providing the subset the graph
//! generators use: [`RngCore`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`rngs::SmallRng`] (xoshiro256** seeded via SplitMix64, deterministic
//! across platforms), and [`seq::SliceRandom`].
//!
//! Distribution machinery is intentionally simple uniform sampling:
//! integer ranges use Lemire multiply-shift reduction, floats use 53-bit
//! mantissa scaling. That is all the workspace's generators rely on.

use std::ops::Range;

/// Core randomness source (the rand 0.8 trait surface minus `try_fill_bytes`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// Seedable generators. Only `seed_from_u64` is needed offline.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sample a value of `Self` uniformly (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling from a range (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256** seeded via SplitMix64 so any
    /// `u64` seed (including 0) yields a good state. Deterministic across
    /// platforms and releases, which graph generation depends on.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing (the rand 0.8 `SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
