//! Offline stand-in for `rayon`.
//!
//! The workspace uses rayon only in "convert the outer loop" shapes:
//! `par_iter().map(..).collect()`, `into_par_iter()`, `par_extend`, and
//! `par_sort_unstable`. This stub keeps those entry points but executes
//! them **sequentially**: `par_iter` hands back the ordinary `std`
//! iterator, so every adapter (`map`, `filter`, `collect`, `sum`, …)
//! works unchanged, and results are bit-identical to the parallel
//! versions (the simulator's sweeps are deterministic and
//! embarrassingly parallel, so order never matters to correctness —
//! only to wall-clock, which a future PR can win back by swapping the
//! real rayon in here).

/// Rayon-only adapter names, aliased onto every std iterator so that
/// code written against real rayon's `ParallelIterator` keeps compiling
/// when `par_iter()` hands back a sequential iterator.
pub trait ParallelIterator: Iterator + Sized {
    /// rayon's `flat_map_iter` (flat-map with a serial inner iterator):
    /// identical to `flat_map` sequentially.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// rayon's work-splitting hint: a no-op sequentially.
    fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// rayon's work-splitting hint: a no-op sequentially.
    fn with_max_len(self, _len: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// `into_par_iter()` for owned collections — sequential fallback.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

/// `par_iter()` for `&collection` — sequential fallback.
pub trait IntoParallelRefIterator<'a> {
    type Iter;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut()` for `&mut collection` — sequential fallback.
pub trait IntoParallelRefMutIterator<'a> {
    type Iter;

    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_extend` for collections — sequential fallback.
pub trait ParallelExtend<T> {
    fn par_extend<I: IntoIterator<Item = T>>(&mut self, iter: I);
}

impl<T, C: Extend<T>> ParallelExtend<T> for C {
    fn par_extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.extend(iter)
    }
}

/// Parallel slice sorts/chunking — sequential fallbacks.
pub trait ParallelSliceMut<T> {
    fn as_seq_slice_mut(&mut self) -> &mut [T];

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.as_seq_slice_mut().sort();
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.as_seq_slice_mut().sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.as_seq_slice_mut().sort_unstable_by_key(f);
    }

    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.as_seq_slice_mut().chunks_mut(size)
    }
}

impl<T> ParallelSliceMut<T> for [T] {
    fn as_seq_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

/// Read-only parallel slice chunking — sequential fallback.
pub trait ParallelSlice<T> {
    fn as_seq_slice(&self) -> &[T];

    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
        self.as_seq_slice().chunks(size)
    }
}

impl<T> ParallelSlice<T> for [T] {
    fn as_seq_slice(&self) -> &[T] {
        self
    }
}

/// Run two closures "in parallel" (sequentially here) and return both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads: 1 in the sequential stand-in.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelExtend, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}
