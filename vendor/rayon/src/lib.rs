//! Offline stand-in for `rayon`, backed by a **real scoped thread pool**.
//!
//! PR 1 shipped this crate as a sequential shim; this version executes the
//! same API surface on worker threads spawned with [`std::thread::scope`]
//! while keeping every result **bit-identical** to a sequential run:
//!
//! * Indexed work (`par_iter`, `into_par_iter`, `par_iter_mut`,
//!   `par_chunks{,_mut}`) is split into contiguous chunks whose boundaries
//!   depend only on the input length — never on the thread count — and each
//!   chunk's output lands in a per-chunk slot. Ordered `collect()` is the
//!   concatenation of those slots, i.e. exactly the sequential order.
//! * The `par_sort*` family is a parallel merge sort: deterministic initial
//!   runs are sorted concurrently, then adjacent runs are merged pairwise
//!   (also concurrently) with a stable, panic-safe merge. Because run
//!   boundaries are a function of the length alone and the merge is stable,
//!   the result is identical for any `RAYON_NUM_THREADS`.
//! * [`join`] runs its two closures on two threads when the pool has more
//!   than one.
//!
//! Worker threads are created per parallel call (scoped threads, so
//! borrowed captures work exactly as with real rayon's pool) and work is
//! distributed chunk-by-chunk from a shared queue, which load-balances
//! uneven sweep points without affecting output order.
//!
//! ## Thread-count control
//!
//! The pool size is resolved **per call**, in this order:
//!
//! 1. a scoped [`with_num_threads`] override (thread-local; used by the
//!    determinism tests to compare 1/2/8-thread runs inside one process),
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! The override is deliberately *not* inherited by worker threads: nested
//! parallel calls made from inside a worker fall back to 2–3, which at most
//! changes scheduling, never results.
//!
//! ## Implemented subset
//!
//! Exactly the shapes the workspace uses (see each trait's docs): the
//! adapters `map`, `filter`, `flat_map_iter`, `with_min_len`/`with_max_len`
//! (hints, no-ops here), and the consumers `collect`, `for_each`, `count`.

use std::cell::Cell;
use std::cmp::Ordering;
use std::sync::Mutex;

// --------------------------------------------------------------------------
// Pool sizing
// --------------------------------------------------------------------------

thread_local! {
    /// Scoped thread-count override; 0 means "not set".
    static THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel call issued from this thread will
/// use: the [`with_num_threads`] override if one is active, else
/// `RAYON_NUM_THREADS`, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let o = THREADS_OVERRIDE.with(Cell::get);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` with every parallel call on *this* thread using `n` workers.
///
/// Restores the previous setting on exit (also on unwind), so tests can
/// compare runs at several thread counts without touching the process
/// environment (and therefore without racing parallel test threads).
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "with_num_threads: thread count must be positive");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREADS_OVERRIDE.with(|c| c.replace(n)));
    f()
}

// --------------------------------------------------------------------------
// Execution engine
// --------------------------------------------------------------------------

/// Upper bound on work chunks per parallel call. Purely a granularity
/// knob: results never depend on it, and it comfortably exceeds the core
/// counts this simulator targets.
const MAX_CHUNKS: usize = 64;

/// Number of chunks for an indexed workload of `len` items. Depends on
/// `len` **only** — never on the thread count — so chunk boundaries (and
/// with them sort stability and chunk-local state) are reproducible across
/// `RAYON_NUM_THREADS` settings.
fn chunk_count(len: usize) -> usize {
    len.min(MAX_CHUNKS)
}

/// Inclusive-start of chunk `i` of `n` over `len` items (balanced to ±1).
fn chunk_start(len: usize, n: usize, i: usize) -> usize {
    i * len / n
}

/// Run `work` over `parts` on the current pool and return the results in
/// part order. Parts are handed to workers from a shared queue, so an
/// expensive part does not serialize the cheap ones behind it; each result
/// is written to its part's slot, so the output order is deterministic.
fn run_ordered<P, R, W>(parts: Vec<P>, work: W) -> Vec<R>
where
    P: Send,
    R: Send,
    W: Fn(P) -> R + Sync,
{
    let threads = current_num_threads().min(parts.len());
    if threads <= 1 {
        return parts.into_iter().map(work).collect();
    }
    let n = parts.len();
    let queue = Mutex::new(parts.into_iter().enumerate());
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().unwrap().next();
                let Some((i, part)) = next else { break };
                let r = work(part);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

// --------------------------------------------------------------------------
// Sources: splittable indexed inputs
// --------------------------------------------------------------------------

/// An indexed input that can be split into contiguous, in-order chunks,
/// each of which is consumed sequentially on one worker.
pub trait ParSource: Sized + Send {
    /// Item the pipeline receives.
    type Item: Send;
    /// One contiguous chunk of the input.
    type Chunk: Send;
    /// Sequential iterator over a chunk.
    type Iter: Iterator<Item = Self::Item>;

    /// Number of items.
    fn len(&self) -> usize;
    /// Split into exactly `n` contiguous chunks, in input order
    /// (`0 < n <= self.len()`).
    fn into_chunks(self, n: usize) -> Vec<Self::Chunk>;
    /// Iterate one chunk.
    fn iter_chunk(chunk: Self::Chunk) -> Self::Iter;
}

/// Borrowed-slice source (`par_iter`).
pub struct SliceSource<'a, T>(&'a [T]);

impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;
    type Chunk = &'a [T];
    type Iter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn into_chunks(self, n: usize) -> Vec<Self::Chunk> {
        let len = self.0.len();
        (0..n)
            .map(|i| &self.0[chunk_start(len, n, i)..chunk_start(len, n, i + 1)])
            .collect()
    }

    fn iter_chunk(chunk: Self::Chunk) -> Self::Iter {
        chunk.iter()
    }
}

/// Mutable-slice source (`par_iter_mut`).
pub struct SliceMutSource<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;
    type Chunk = &'a mut [T];
    type Iter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn into_chunks(self, n: usize) -> Vec<Self::Chunk> {
        let len = self.0.len();
        let mut rest = self.0;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0;
        for i in 1..=n {
            let end = chunk_start(len, n, i);
            let (head, tail) = rest.split_at_mut(end - prev);
            out.push(head);
            rest = tail;
            prev = end;
        }
        out
    }

    fn iter_chunk(chunk: Self::Chunk) -> Self::Iter {
        chunk.iter_mut()
    }
}

/// Owned-`Vec` source (`into_par_iter`). Splitting moves elements into
/// per-chunk `Vec`s up front; the workspace only feeds small descriptor
/// vectors (sweep points, chunk descriptors) through this path.
pub struct VecSource<T>(Vec<T>);

impl<T: Send> ParSource for VecSource<T> {
    type Item = T;
    type Chunk = Vec<T>;
    type Iter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn into_chunks(mut self, n: usize) -> Vec<Self::Chunk> {
        let len = self.0.len();
        let mut out = Vec::with_capacity(n);
        for i in (0..n).rev() {
            out.push(self.0.split_off(chunk_start(len, n, i)));
        }
        out.reverse();
        out
    }

    fn iter_chunk(chunk: Self::Chunk) -> Self::Iter {
        chunk.into_iter()
    }
}

/// Integer-range source (`(0..n).into_par_iter()`): splitting is free, so
/// index-driven loops (e.g. the CSR offsets scan) parallelize without
/// materializing an index vector.
pub struct RangeSource<T>(std::ops::Range<T>);

macro_rules! range_source {
    ($($t:ty),*) => {$(
        impl ParSource for RangeSource<$t> {
            type Item = $t;
            type Chunk = std::ops::Range<$t>;
            type Iter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                self.0.end.saturating_sub(self.0.start) as usize
            }

            fn into_chunks(self, n: usize) -> Vec<Self::Chunk> {
                let len = ParSource::len(&self);
                let start = self.0.start;
                (0..n)
                    .map(|i| {
                        (start + chunk_start(len, n, i) as $t)
                            ..(start + chunk_start(len, n, i + 1) as $t)
                    })
                    .collect()
            }

            fn iter_chunk(chunk: Self::Chunk) -> Self::Iter {
                chunk
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeSource<$t>, IdentOp>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter {
                    source: RangeSource(self),
                    op: IdentOp,
                }
            }
        }
    )*};
}

range_source!(u32, u64, usize);

/// Sub-slice source for `par_chunks(size)`: items are `&[T]` windows.
/// Work-chunk boundaries are aligned to whole windows.
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParSource for ChunksSource<'a, T> {
    type Item = &'a [T];
    type Chunk = (&'a [T], usize);
    type Iter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn into_chunks(self, n: usize) -> Vec<Self::Chunk> {
        let windows = self.len();
        (0..n)
            .map(|i| {
                let lo = chunk_start(windows, n, i) * self.size;
                let hi = (chunk_start(windows, n, i + 1) * self.size).min(self.slice.len());
                (&self.slice[lo..hi], self.size)
            })
            .collect()
    }

    fn iter_chunk((slice, size): Self::Chunk) -> Self::Iter {
        slice.chunks(size)
    }
}

/// Mutable sub-slice source for `par_chunks_mut(size)`.
pub struct ChunksMutSource<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParSource for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];
    type Chunk = (&'a mut [T], usize);
    type Iter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn into_chunks(self, n: usize) -> Vec<Self::Chunk> {
        let windows = self.len();
        let total = self.slice.len();
        let size = self.size;
        let mut rest = self.slice;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0;
        for i in 1..=n {
            let end = (chunk_start(windows, n, i) * size).min(total);
            let (head, tail) = rest.split_at_mut(end - prev);
            out.push((head, size));
            rest = tail;
            prev = end;
        }
        out
    }

    fn iter_chunk((slice, size): Self::Chunk) -> Self::Iter {
        slice.chunks_mut(size)
    }
}

// --------------------------------------------------------------------------
// Ops: the per-item pipeline built by the adapters
// --------------------------------------------------------------------------

/// A fused per-item transformation: feed one input item, emit zero or more
/// output items into `sink`. `Sync` because one op instance is shared by
/// every worker.
pub trait Op<In>: Sync {
    /// Output item type.
    type Out: Send;
    /// Process one item.
    fn feed(&self, item: In, sink: &mut dyn FnMut(Self::Out));
}

/// The identity op at the head of every pipeline.
pub struct IdentOp;

impl<T: Send> Op<T> for IdentOp {
    type Out = T;

    fn feed(&self, item: T, sink: &mut dyn FnMut(T)) {
        sink(item);
    }
}

/// `map` op.
pub struct MapOp<Inner, F> {
    inner: Inner,
    f: F,
}

impl<In, Inner, F, R> Op<In> for MapOp<Inner, F>
where
    Inner: Op<In>,
    F: Fn(Inner::Out) -> R + Sync,
    R: Send,
{
    type Out = R;

    fn feed(&self, item: In, sink: &mut dyn FnMut(R)) {
        self.inner.feed(item, &mut |x| sink((self.f)(x)));
    }
}

/// `filter` op.
pub struct FilterOp<Inner, F> {
    inner: Inner,
    f: F,
}

impl<In, Inner, F> Op<In> for FilterOp<Inner, F>
where
    Inner: Op<In>,
    F: Fn(&Inner::Out) -> bool + Sync,
{
    type Out = Inner::Out;

    fn feed(&self, item: In, sink: &mut dyn FnMut(Self::Out)) {
        self.inner.feed(item, &mut |x| {
            if (self.f)(&x) {
                sink(x);
            }
        });
    }
}

/// `flat_map_iter` op (flat-map with a serial inner iterator).
pub struct FlatMapIterOp<Inner, F> {
    inner: Inner,
    f: F,
}

impl<In, Inner, F, U> Op<In> for FlatMapIterOp<Inner, F>
where
    Inner: Op<In>,
    F: Fn(Inner::Out) -> U + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    type Out = U::Item;

    fn feed(&self, item: In, sink: &mut dyn FnMut(Self::Out)) {
        self.inner.feed(item, &mut |x| {
            for y in (self.f)(x) {
                sink(y);
            }
        });
    }
}

// --------------------------------------------------------------------------
// The parallel iterator pipeline
// --------------------------------------------------------------------------

/// A lazy parallel pipeline: a splittable [`ParSource`] plus a fused
/// per-item [`Op`]. Execution happens in the consumer (`collect`,
/// `for_each`, `count`), which fans the source's chunks out across the
/// pool and reassembles per-chunk results in order.
pub struct ParIter<S, O> {
    source: S,
    op: O,
}

impl<S: ParSource, O: Op<S::Item>> ParIter<S, O> {
    /// Map each item through `f`.
    pub fn map<R, F>(self, f: F) -> ParIter<S, MapOp<O, F>>
    where
        R: Send,
        F: Fn(O::Out) -> R + Sync,
    {
        ParIter {
            source: self.source,
            op: MapOp { inner: self.op, f },
        }
    }

    /// Keep only items for which `f` returns true.
    pub fn filter<F>(self, f: F) -> ParIter<S, FilterOp<O, F>>
    where
        F: Fn(&O::Out) -> bool + Sync,
    {
        ParIter {
            source: self.source,
            op: FilterOp { inner: self.op, f },
        }
    }

    /// rayon's `flat_map_iter`: flat-map where the produced iterator is
    /// consumed serially within the worker.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<S, FlatMapIterOp<O, F>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(O::Out) -> U + Sync,
    {
        ParIter {
            source: self.source,
            op: FlatMapIterOp { inner: self.op, f },
        }
    }

    /// rayon's work-splitting hint — a no-op here (chunking is fixed by
    /// input length to keep results thread-count-independent).
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// rayon's work-splitting hint — a no-op here.
    pub fn with_max_len(self, _len: usize) -> Self {
        self
    }

    /// Apply `f` to every item (order of application is unspecified across
    /// chunks, as with real rayon).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(O::Out) + Sync,
    {
        self.fold_chunks(|| (), |(), x| f(x));
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.fold_chunks(|| 0usize, |c, _| *c += 1).into_iter().sum()
    }

    /// Fan chunks out across the pool; fold each chunk's items into an
    /// accumulator; return the accumulators in chunk (= input) order.
    fn fold_chunks<A, FI, FS>(self, init: FI, step: FS) -> Vec<A>
    where
        A: Send,
        FI: Fn() -> A + Sync,
        FS: Fn(&mut A, O::Out) + Sync,
    {
        let ParIter { source, op } = self;
        let n = chunk_count(source.len());
        if n == 0 {
            return Vec::new();
        }
        let chunks = source.into_chunks(n);
        let op = &op;
        let init = &init;
        let step = &step;
        run_ordered(chunks, move |chunk| {
            let mut acc = init();
            for item in S::iter_chunk(chunk) {
                op.feed(item, &mut |x| step(&mut acc, x));
            }
            acc
        })
    }
}

/// Consumer side of a parallel pipeline. `collect()` preserves input
/// order exactly (chunk boundaries are length-deterministic and chunk
/// results are concatenated in order), so it is bit-identical to the same
/// pipeline run sequentially.
pub trait ParallelIterator: Sized {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Execute, returning per-chunk output vectors in input order.
    fn collect_vec_list(self) -> Vec<Vec<Self::Item>>;

    /// Execute and collect into `C`, preserving input order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        let lists = self.collect_vec_list();
        let mut out = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        for mut list in lists {
            out.append(&mut list);
        }
        C::from(out)
    }
}

impl<S: ParSource, O: Op<S::Item>> ParallelIterator for ParIter<S, O> {
    type Item = O::Out;

    fn collect_vec_list(self) -> Vec<Vec<O::Out>> {
        self.fold_chunks(Vec::new, |v, x| v.push(x))
    }
}

// --------------------------------------------------------------------------
// Entry-point traits (the prelude)
// --------------------------------------------------------------------------

/// `into_par_iter()` for owned collections (and the identity on an
/// already-parallel pipeline, so adapters can be passed to `par_extend`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecSource<T>, IdentOp>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: VecSource(self),
            op: IdentOp,
        }
    }
}

impl<S: ParSource, O: Op<S::Item>> IntoParallelIterator for ParIter<S, O> {
    type Item = O::Out;
    type Iter = Self;

    fn into_par_iter(self) -> Self {
        self
    }
}

/// `par_iter()` for `&collection` (slices and anything that derefs to
/// one, e.g. `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (`&'a T`).
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, IdentOp>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource(self),
            op: IdentOp,
        }
    }
}

/// `par_iter_mut()` for `&mut collection`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (`&'a mut T`).
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParIter<SliceMutSource<'a, T>, IdentOp>;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        ParIter {
            source: SliceMutSource(self),
            op: IdentOp,
        }
    }
}

/// `par_extend` for `Vec`: runs the pipeline on the pool, then appends the
/// per-chunk results in order — same final contents as sequential
/// `extend`.
pub trait ParallelExtend<T: Send> {
    /// Extend with the items of `par_iter`, preserving input order.
    fn par_extend<I>(&mut self, par_iter: I)
    where
        I: IntoParallelIterator<Item = T>;
}

impl<T: Send> ParallelExtend<T> for Vec<T> {
    fn par_extend<I>(&mut self, par_iter: I)
    where
        I: IntoParallelIterator<Item = T>,
    {
        let lists = par_iter.into_par_iter().collect_vec_list();
        self.reserve(lists.iter().map(Vec::len).sum());
        for mut list in lists {
            self.append(&mut list);
        }
    }
}

/// Read-only parallel slice chunking.
pub trait ParallelSlice<T: Sync> {
    /// View as a slice.
    fn as_parallel_slice(&self) -> &[T];

    /// Parallel iterator over `size`-element windows.
    fn par_chunks(&self, size: usize) -> ParIter<ChunksSource<'_, T>, IdentOp> {
        assert!(size > 0, "par_chunks: chunk size must be positive");
        ParIter {
            source: ChunksSource {
                slice: self.as_parallel_slice(),
                size,
            },
            op: IdentOp,
        }
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

/// Parallel sorts and mutable chunking for slices.
pub trait ParallelSliceMut<T: Send> {
    /// View as a mutable slice.
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    /// Parallel iterator over mutable `size`-element windows.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutSource<'_, T>, IdentOp> {
        assert!(size > 0, "par_chunks_mut: chunk size must be positive");
        ParIter {
            source: ChunksMutSource {
                slice: self.as_parallel_slice_mut(),
                size,
            },
            op: IdentOp,
        }
    }

    /// Parallel stable sort.
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &T::cmp, true);
    }

    /// Parallel stable sort with a comparator.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &compare, true);
    }

    /// Parallel stable sort by key.
    fn par_sort_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &|a: &T, b: &T| f(a).cmp(&f(b)), true);
    }

    /// Parallel unstable sort. (The merge phase is stable and run
    /// boundaries are length-deterministic, so — unlike real rayon — the
    /// result is identical across thread counts even for keys that
    /// compare equal.)
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &T::cmp, false);
    }

    /// Parallel unstable sort with a comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &compare, false);
    }

    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &|a: &T, b: &T| f(a).cmp(&f(b)), false);
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

// --------------------------------------------------------------------------
// join
// --------------------------------------------------------------------------

/// Run two closures, potentially in parallel, and return both results.
/// With a one-thread pool this degrades to sequential `(a(), b())`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let handle_b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

// --------------------------------------------------------------------------
// Parallel merge sort
// --------------------------------------------------------------------------

/// Length of the initial sorted runs for a slice of `len` elements: a
/// function of the length alone, so run boundaries — and therefore the
/// placement of equal keys — never depend on the thread count.
fn initial_run_len(len: usize) -> usize {
    /// Below this, threading overhead beats the sort itself.
    const MIN_RUN: usize = 4096;
    len.div_ceil(MAX_CHUNKS).max(MIN_RUN)
}

/// Deterministic parallel merge sort: sort fixed-boundary runs
/// concurrently, then merge adjacent runs pairwise (concurrently per
/// level) with a stable merge.
fn par_merge_sort<T, C>(v: &mut [T], compare: &C, stable: bool)
where
    T: Send,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let len = v.len();
    let run = initial_run_len(len);
    // ZSTs have nothing to merge byte-wise; all orders are equal anyway.
    if len <= run || std::mem::size_of::<T>() == 0 {
        if stable {
            v.sort_by(|a, b| compare(a, b));
        } else {
            v.sort_unstable_by(|a, b| compare(a, b));
        }
        return;
    }
    let runs: Vec<&mut [T]> = v.chunks_mut(run).collect();
    run_ordered(runs, |chunk: &mut [T]| {
        if stable {
            chunk.sort_by(|a, b| compare(a, b));
        } else {
            chunk.sort_unstable_by(|a, b| compare(a, b));
        }
    });
    // Take-left-on-ties keeps the merge stable.
    let take_left = |a: &T, b: &T| compare(a, b) != Ordering::Greater;
    let mut width = run;
    while width < len {
        let pairs: Vec<&mut [T]> = v
            .chunks_mut(2 * width)
            .filter(|c| c.len() > width)
            .collect();
        run_ordered(pairs, |pair: &mut [T]| merge_halves(pair, width, &take_left));
        width *= 2;
    }
}

/// Merge the sorted halves `v[..mid]` and `v[mid..]` in place, buffering
/// the left half. `take_left(a, b)` must be "a goes first" (true on ties
/// for stability).
///
/// Panic safety: elements live either in the buffer region or in `v`,
/// never in both; if `take_left` unwinds, [`MergeHole`]'s drop copies the
/// not-yet-merged buffered elements back into the remaining gap, so every
/// element is dropped exactly once.
fn merge_halves<T, F>(v: &mut [T], mid: usize, take_left: &F)
where
    F: Fn(&T, &T) -> bool,
{
    use std::ptr;

    let len = v.len();
    debug_assert!(mid > 0 && mid < len);
    let base = v.as_mut_ptr();
    // Raw storage for the left half; `buf.len()` stays 0, so dropping it
    // frees capacity without dropping elements.
    let mut buf: Vec<T> = Vec::with_capacity(mid);
    unsafe {
        ptr::copy_nonoverlapping(base, buf.as_mut_ptr(), mid);
        let mut hole = MergeHole {
            start: buf.as_mut_ptr(),
            end: buf.as_mut_ptr().add(mid),
            dest: base,
        };
        let mut right = base.add(mid);
        let right_end = base.add(len);
        while hole.start < hole.end && right < right_end {
            if take_left(&*hole.start, &*right) {
                ptr::copy_nonoverlapping(hole.start, hole.dest, 1);
                hole.start = hole.start.add(1);
            } else {
                ptr::copy_nonoverlapping(right, hole.dest, 1);
                right = right.add(1);
            }
            hole.dest = hole.dest.add(1);
        }
        // `hole` drops here, copying any remaining buffered (left-run)
        // elements into the tail gap — which is also the normal-exit path
        // when the right run empties first.
    }
}

/// The un-merged remainder of the buffered left run; see [`merge_halves`].
struct MergeHole<T> {
    start: *mut T,
    end: *mut T,
    dest: *mut T,
}

impl<T> Drop for MergeHole<T> {
    fn drop(&mut self) {
        unsafe {
            let n = self.end.offset_from(self.start) as usize;
            std::ptr::copy_nonoverlapping(self.start, self.dest, n);
        }
    }
}

// --------------------------------------------------------------------------

pub mod prelude {
    //! The traits a `use rayon::prelude::*` call site expects.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelExtend, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// All thread counts the determinism tests compare.
    const COUNTS: [usize; 4] = [1, 2, 3, 8];

    /// Serializes the tests that read or write `RAYON_NUM_THREADS`
    /// without an override: libtest runs tests on parallel threads of
    /// one process, and the env var is process-global.
    fn env_lock() -> &'static Mutex<()> {
        static LOCK: Mutex<()> = Mutex::new(());
        &LOCK
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let input: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for n in COUNTS {
            let got: Vec<u64> = with_num_threads(n, || {
                input.par_iter().map(|&x| x * 3 + 1).collect()
            });
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn into_par_iter_flat_map_filter_matches_sequential() {
        let input: Vec<u64> = (0..5_000).collect();
        let expect: Vec<u64> = input
            .iter()
            .flat_map(|&x| [x, x + 1_000_000])
            .filter(|&x| x % 3 != 0)
            .collect();
        for n in COUNTS {
            let got: Vec<u64> = with_num_threads(n, || {
                input
                    .clone()
                    .into_par_iter()
                    .flat_map_iter(|x| [x, x + 1_000_000])
                    .filter(|&x| x % 3 != 0)
                    .collect()
            });
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn range_into_par_iter_matches_sequential() {
        let expect: Vec<u64> = (10u64..50_010).map(|x| x * x).collect();
        for n in COUNTS {
            let got: Vec<u64> = with_num_threads(n, || {
                (10u64..50_010).into_par_iter().map(|x| x * x).collect()
            });
            assert_eq!(got, expect, "n={n}");
        }
        let empty: Vec<u32> = (5u32..5).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = Vec::new();
        let got: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(got.is_empty());
        let mut out: Vec<u32> = Vec::new();
        out.par_extend(Vec::<u32>::new().into_par_iter());
        assert!(out.is_empty());
        let mut empty: [u64; 0] = [];
        empty.par_sort_unstable();
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v: Vec<u64> = (0..20_000).collect();
        with_num_threads(4, || {
            v.par_iter_mut().for_each(|x| *x *= 2);
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn count_and_for_each() {
        let v: Vec<u32> = (0..1_000).collect();
        let c = with_num_threads(4, || v.par_iter().filter(|&&x| x % 2 == 0).count());
        assert_eq!(c, 500);
        let sum = std::sync::atomic::AtomicU64::new(0);
        v.par_iter()
            .for_each(|&x| {
                sum.fetch_add(x as u64, std::sync::atomic::Ordering::Relaxed);
            });
        assert_eq!(sum.into_inner(), 999 * 1000 / 2);
    }

    /// A keyed LCG vector with many duplicate keys — the adversarial case
    /// for cross-thread-count sort determinism.
    fn keyed_input(len: usize) -> Vec<(u32, u32)> {
        let mut state = 0x1234_5678_u64;
        (0..len as u32)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (((state >> 33) % 97) as u32, i)
            })
            .collect()
    }

    #[test]
    fn par_sort_unstable_matches_std_and_is_thread_count_invariant() {
        let input: Vec<u64> = keyed_input(100_000)
            .into_iter()
            .map(|(k, i)| ((k as u64) << 32) | i as u64)
            .collect();
        let mut expect = input.clone();
        expect.sort_unstable();
        let mut reference: Option<Vec<u64>> = None;
        for n in COUNTS {
            let mut v = input.clone();
            with_num_threads(n, || v.par_sort_unstable());
            assert_eq!(v, expect, "n={n}");
            if let Some(r) = &reference {
                assert_eq!(&v, r, "thread-count dependent sort at n={n}");
            } else {
                reference = Some(v);
            }
        }
    }

    #[test]
    fn par_sort_by_key_is_stable_and_thread_count_invariant() {
        // Keys repeat heavily; payload (insertion index) must stay in
        // order within each key group, identically for every thread count.
        let input = keyed_input(50_000);
        let mut expect = input.clone();
        expect.sort_by_key(|&(k, _)| k);
        for n in COUNTS {
            let mut v = input.clone();
            with_num_threads(n, || v.par_sort_by_key(|&(k, _)| k));
            assert_eq!(v, expect, "stable sort diverged at n={n}");
        }
    }

    #[test]
    fn par_sort_unstable_by_key_sorts() {
        let mut v = keyed_input(30_000);
        let reference = {
            let mut r = v.clone();
            with_num_threads(1, || r.par_sort_unstable_by_key(|&(k, _)| k));
            r
        };
        with_num_threads(8, || v.par_sort_unstable_by_key(|&(k, _)| k));
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(v, reference);
    }

    #[test]
    fn par_extend_appends_in_order() {
        let mut out: Vec<u64> = vec![7, 8];
        let src: Vec<u64> = (0..10_000).collect();
        with_num_threads(4, || {
            out.par_extend(src.par_iter().map(|&x| x + 1));
        });
        assert_eq!(out.len(), 10_002);
        assert_eq!(&out[..2], &[7, 8]);
        assert!(out[2..].iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn par_chunks_sees_aligned_windows() {
        let v: Vec<u32> = (0..1000).collect();
        let sums: Vec<u64> = with_num_threads(4, || {
            v.par_chunks(64)
                .map(|c| c.iter().map(|&x| x as u64).sum())
                .collect()
        });
        let expect: Vec<u64> = v
            .chunks(64)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn par_chunks_mut_mutates_in_place() {
        let mut v = vec![1u32; 999];
        with_num_threads(4, || {
            v.par_chunks_mut(100)
                .for_each(|c| {
                    for x in c {
                        *x += 1;
                    }
                });
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        // Nested joins must not deadlock (scoped threads, no fixed pool).
        let (x, (y, z)) = join(|| 1, || join(|| 2, || 3));
        assert_eq!((x, y, z), (1, 2, 3));
    }

    #[test]
    fn with_num_threads_scopes_and_restores() {
        // Both unoverridden reads must see the same environment.
        let _env = env_lock().lock().unwrap();
        let outside = current_num_threads();
        let inside = with_num_threads(3, current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
        // Nested overrides: innermost wins, each restored on exit.
        with_num_threads(2, || {
            assert_eq!(current_num_threads(), 2);
            with_num_threads(5, || assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn threads_actually_run_in_parallel() {
        // With 4 workers and 4 long-ish chunks, at least two distinct
        // worker threads must be observed.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        with_num_threads(4, || {
            vec![0u64; 4].into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(20));
            });
        });
        assert!(
            ids.into_inner().unwrap().len() >= 2,
            "all chunks ran on one thread"
        );
    }

    #[test]
    fn env_var_sets_default_pool_size() {
        // Serialized with the other unoverridden-read test, and the
        // prior value is restored so a CI-set RAYON_NUM_THREADS survives
        // this test binary. (Every other test uses the thread-local
        // override, which takes precedence over this process-global
        // write.)
        let _env = env_lock().lock().unwrap();
        let prev = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "7");
        assert_eq!(current_num_threads(), 7);
        assert_eq!(with_num_threads(2, current_num_threads), 2);
        match prev {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                let v: Vec<u32> = (0..1000).collect();
                let _: Vec<u32> = v
                    .par_iter()
                    .map(|&x| {
                        if x == 777 {
                            panic!("boom");
                        }
                        x
                    })
                    .collect();
            })
        });
        assert!(r.is_err(), "worker panic was swallowed");
    }
}
