//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors a minimal serde implementation (see `vendor/serde`) built
//! around a JSON-like `Value` tree: `Serialize` lowers a type to a
//! `serde::Value` and `Deserialize` raises one back. These derive macros
//! generate those impls for the shapes the workspace actually uses:
//!
//! * unit / tuple / named-field structs (no generics),
//! * enums with unit, tuple, and struct variants, externally tagged the
//!   way real serde tags them (`"Variant"`, `{"Variant": ...}`).
//!
//! The parser below walks the raw `proc_macro::TokenStream` by hand
//! because `syn`/`quote` are not available offline. It only needs field
//! and variant *names* (plus tuple arities): the generated code calls
//! `serde::Serialize`/`serde::Deserialize` generically, so field types
//! never have to be understood, only skipped (tracking `<`/`>` depth so
//! commas inside `Vec<(f64, f64)>` do not end a field early).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape).parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape).parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` not supported");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive stub: expected struct or enum, found `{other}`"),
    };
    (name, shape)
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() == '#' {
            *i += 2; // '#' and the following [...] group
        } else {
            break;
        }
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, found {other:?}"),
    }
}

/// Advance past one type (or discriminant expression), stopping after the
/// next top-level `,` or at end of stream. Angle-bracket depth is tracked;
/// `()`/`[]`/`{}` arrive as whole groups so they need no tracking. The `>`
/// of a `->` (fn-pointer return type) is not a closing bracket: a joint
/// `-` immediately before it marks it as part of the arrow.
fn skip_past_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i64;
    let mut after_joint_minus = false;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !after_joint_minus => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
            after_joint_minus =
                p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
        } else {
            after_joint_minus = false;
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i));
        // ':'
        i += 1;
        skip_past_comma(&toks, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_past_comma(&toks, &mut i);
        count += 1;
    }
    // A trailing comma leaves no tokens after the last separator, so the
    // loop above counts fields, not separators.
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        skip_past_comma(&toks, &mut i);
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => map_literal(
            fields
                .iter()
                .map(|f| (f.clone(), format!("::serde::Serialize::to_value(&self.{f})"))),
        ),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => {},\n",
                            tagged(vn, "::serde::Serialize::to_value(__f0)")
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {},\n",
                            binds.join(", "),
                            tagged(vn, &format!("::serde::Value::Array(vec![{}])", items.join(", ")))
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inner = map_literal(
                            fields
                                .iter()
                                .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})"))),
                        );
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {},\n",
                            fields.join(", "),
                            tagged(vn, &inner)
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn map_literal(entries: impl Iterator<Item = (String, String)>) -> String {
    let items: Vec<String> = entries
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", items.join(", "))
}

fn tagged(variant: &str, inner: &str) -> String {
    format!(
        "::serde::Value::Map(vec![(::std::string::String::from(\"{variant}\"), {inner})])"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                .collect();
            format!(
                "let __a = ::serde::__expect_array(v, \"{name}\", {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__m, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "let __m = ::serde::__expect_map(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = ::serde::__expect_array(__inner, \"{name}::{vn}\", {n})?;\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::__field(__m, \"{f}\", \"{name}::{vn}\")?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __m = ::serde::__expect_map(__inner, \"{name}::{vn}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}},\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"unknown unit variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                 \"invalid value for enum {name}: {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
