//! Offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree to JSON text and parses it back.
//!
//! Supports exactly what the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`] —
//! with round-trip-exact integers (via `u64`/`i64`/`u128` value
//! variants) and round-trip-exact floats (Rust's shortest-representation
//! `Display`). Non-finite floats render as `null`, as in real
//! serde_json.

use serde::{Deserialize, Serialize, Value};

/// JSON error: a message, optionally with the byte offset where parsing
/// failed.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Lower a value to the interchange tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Raise an interchange tree into a concrete type.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    Ok(T::from_value(v)?)
}

/// Parse JSON text into a concrete type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- emitter

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's float Display is shortest-round-trip, so parsing
                // the text recovers the identical bits.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    // Keep a float marker so "5.0" does not re-parse as an
                    // integer (serde_json prints 5.0 the same way).
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(out, indent, '[', ']', items.iter(), |item, out, ind| {
            write_value(item, out, ind)
        }),
        Value::Map(entries) => write_seq(out, indent, '{', '}', entries.iter(), |(k, v), out, ind| {
            write_escaped(k, out);
            out.push(':');
            if ind.is_some() {
                out.push(' ');
            }
            write_value(v, out, ind);
        }),
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, Option<usize>),
) {
    out.push(open);
    let empty = items.len() == 0;
    let inner = indent.map(|n| n + 1);
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = inner {
            out.push('\n');
            out.extend(std::iter::repeat("  ").take(n));
        }
        write_item(item, out, inner);
    }
    if let (Some(n), false) = (indent, empty) {
        out.push('\n');
        out.extend(std::iter::repeat("  ").take(n));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: the next escape must be a
                                // low surrogate or the input is malformed.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("expected low surrogate"));
                                }
                                char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    /// Parse a number with the JSON grammar: `-? (0 | [1-9][0-9]*)
    /// ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?`. Leading zeros and bare
    /// trailing dots are rejected, matching real serde_json.
    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => self.eat_digits(),
            _ => return Err(self.err("expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            self.eat_digits();
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            self.eat_digits();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            // Integers must land in a lossless variant; silently degrading
            // to f64 would corrupt out-of-range values instead of
            // rejecting them.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U128(n));
            }
            return Err(self.err("integer out of range"));
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn eat_digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}
