//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! `Instant`-based timer instead of criterion's statistics engine. Each
//! benchmark runs `sample_size` timed samples after one warm-up and
//! reports the mean, sample standard deviation, min/max, and a Tukey-IQR
//! outlier count (samples outside `[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`), so
//! BENCH_* trajectories carry enough dispersion information to judge
//! whether a delta is noise — while the bench targets stay compiling
//! against the same code real criterion would see.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self {
        run_one("", &id.into_benchmark_id().0, 10, None, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().0,
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().0,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        warm: false,
    };
    // One warm-up invocation, untimed.
    f(&mut b);
    b.warm = true;
    // Each invocation of `f` is one sample; record its per-iteration time
    // so dispersion across samples is visible, not averaged away.
    let mut per_iter_secs = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        if b.iters > 0 {
            per_iter_secs.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let Some(stats) = SampleStats::from_samples(&per_iter_secs) else {
        println!("{label}: no iterations recorded");
        return;
    };
    let mut line = format!(
        "{label}: {:.3} ms/iter ± {:.3} (min {:.3}, max {:.3}, N={}",
        stats.mean * 1e3,
        stats.std_dev * 1e3,
        stats.min * 1e3,
        stats.max * 1e3,
        stats.len,
    );
    if stats.outliers > 0 {
        line.push_str(&format!(", {} outliers", stats.outliers));
    }
    line.push(')');
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(", {:.2} Melem/s", n as f64 / stats.mean / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(", {:.2} MB/s", n as f64 / stats.mean / 1e6));
        }
        None => {}
    }
    println!("{line}");
}

/// Summary statistics over a benchmark's per-iteration sample times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples.
    pub len: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Samples outside the Tukey fences `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`.
    pub outliers: usize,
}

impl SampleStats {
    /// Summarize `samples`; `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let len = samples.len();
        let mean = samples.iter().sum::<f64>() / len as f64;
        let std_dev = if len > 1 {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (len - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample time"));
        let q1 = percentile(&sorted, 0.25);
        let q3 = percentile(&sorted, 0.75);
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let outliers = sorted.iter().filter(|&&x| x < lo || x > hi).count();
        Some(SampleStats {
            len,
            mean,
            std_dev,
            min: sorted[0],
            max: sorted[len - 1],
            outliers,
        })
    }
}

/// Linear-interpolated percentile of an ascending-sorted, non-empty slice
/// (`p` in `[0, 1]`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    warm: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        let dt = start.elapsed();
        if self.warm {
            self.elapsed += dt;
            self.iters += 1;
        }
    }
}

/// Units for group throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_input_is_none() {
        assert!(SampleStats::from_samples(&[]).is_none());
    }

    #[test]
    fn stats_of_single_sample() {
        let s = SampleStats::from_samples(&[2.5]).unwrap();
        assert_eq!(s.len, 1);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (2.5, 2.5));
        assert_eq!(s.outliers, 0);
    }

    #[test]
    fn stats_mean_and_std_dev() {
        // Known sample std dev: [2, 4, 4, 4, 5, 5, 7, 9] has mean 5 and
        // sample variance 32/7.
        let s = SampleStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (2.0, 9.0));
    }

    #[test]
    fn iqr_flags_the_outlier() {
        // Tight cluster plus one far point: exactly one Tukey outlier.
        let mut samples = vec![10.0, 10.1, 10.2, 9.9, 9.8, 10.0, 10.1, 9.9];
        samples.push(50.0);
        let s = SampleStats::from_samples(&samples).unwrap();
        assert_eq!(s.outliers, 1, "{s:?}");
        // And with the far point removed, none.
        samples.pop();
        assert_eq!(SampleStats::from_samples(&samples).unwrap().outliers, 0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert!((percentile(&sorted, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&sorted, 0.25) - 1.75).abs() < 1e-12);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
