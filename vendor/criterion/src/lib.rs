//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! `Instant`-based timer instead of criterion's statistics engine. Each
//! benchmark runs `sample_size` timed iterations after one warm-up and
//! reports the mean, so `cargo bench` gives usable (if unfancy)
//! numbers, and the bench targets stay compiling against the same code
//! real criterion would see.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self {
        run_one("", &id.into_benchmark_id().0, 10, None, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().0,
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().0,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        warm: false,
    };
    // One warm-up invocation, untimed.
    f(&mut b);
    b.warm = true;
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let mut line = format!("{label}: {:.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(", {:.2} Melem/s", n as f64 / per_iter / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(", {:.2} MB/s", n as f64 / per_iter / 1e6));
        }
        None => {}
    }
    println!("{line}");
}

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    warm: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        let dt = start.elapsed();
        if self.warm {
            self.elapsed += dt;
            self.iters += 1;
        }
    }
}

/// Units for group throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
