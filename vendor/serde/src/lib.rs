//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of serde the workspace uses, built around an explicit [`Value`]
//! tree instead of serde's visitor machinery:
//!
//! * [`Serialize`] lowers a type to a [`Value`];
//! * [`Deserialize`] raises a [`Value`] back into a type;
//! * the `Serialize`/`Deserialize` derive macros (re-exported from
//!   `serde_derive`) generate those impls for plain structs and enums,
//!   using serde's externally-tagged enum representation so the JSON
//!   produced by `serde_json` looks like real serde output.
//!
//! Integers are preserved exactly (`u64`/`i64`/`u128` variants rather
//! than routing everything through `f64`), which the simulator relies on:
//! `SimTime(u64::MAX)` must round-trip bit-exactly.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree; the interchange format between the traits and
/// `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    U128(u128),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error: a message string, like
/// `serde::de::Error::custom`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Raise a [`Value`] tree back into `Self`.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ derive glue
// Helpers the generated code calls; public but hidden from docs.

#[doc(hidden)]
pub fn __expect_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(Error::custom(format!("expected map for {ty}, got {other:?}"))),
    }
}

#[doc(hidden)]
pub fn __expect_array<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(a) if a.len() == len => Ok(a),
        other => Err(Error::custom(format!(
            "expected {len}-element array for {ty}, got {other:?}"
        ))),
    }
}

#[doc(hidden)]
pub fn __field<T: Deserialize>(m: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        // Absent keys deserialize as Null so `Option<T>` fields may be
        // omitted; non-optional types turn this into a field error below.
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{key}` for {ty}"))),
    }
}

// -------------------------------------------------------------- primitives

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::U128(n) if *n <= u64::MAX as u128 => *n as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::U128(*self)
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U128(n) => Ok(*n),
            Value::U64(n) => Ok(*n as u128),
            Value::I64(n) if *n >= 0 => Ok(*n as u128),
            other => Err(Error::custom(format!("expected integer, got {other:?}"))),
        }
    }
}

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U128(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected single-char string, got {other:?}"))),
        }
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(v)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| Error::custom(format!("expected {N}-element array, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = $n; 1 } )+;
                let a = __expect_array(v, "tuple", LEN)?;
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
