//! Offline stand-in for `proptest`.
//!
//! Provides the subset `tests/properties.rs` uses: the
//! [`Strategy`](strategy::Strategy) trait (with `prop_map`), range and
//! tuple strategies, `any::<bool>()`,
//! [`collection::vec`], [`test_runner::ProptestConfig`], and the
//! `proptest!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted offline:
//!
//! * **no shrinking** — a failing case panics with the generated inputs'
//!   seed case number instead of a minimized counterexample;
//! * **fixed deterministic seeding** — case `k` of test run `n` derives
//!   from a SplitMix64 stream, so failures reproduce exactly;
//! * `prop_assert!` panics (fail-fast) rather than returning `Err`.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generate values of `Self::Value` from a random stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy generating a constant.
    #[derive(Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty proptest range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(v as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty proptest range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range.
                        return rng.next_u64() as $t;
                    }
                    let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo.wrapping_add(v as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty proptest range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// `bool` strategy behind `any::<bool>()`.
    #[derive(Clone, Copy, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

pub mod arbitrary {
    use crate::strategy::AnyBool;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary {
        type Strategy: crate::strategy::Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arb_full_range {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;

                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    arb_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u32>()`, …).
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, length_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 stream for case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration; only `cases` matters in the stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 32 keeps simulation-heavy
            // properties inside a comfortable `cargo test` budget while
            // still exploring the space.
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current case (panics in the stand-in; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Stable per-test seed: derived from the test name so cases
            // reproduce across runs and are independent across tests.
            let test_seed = {
                let name = stringify!($name);
                let mut h = 0xcbf29ce484222325u64;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                }
                h
            };
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    test_seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
