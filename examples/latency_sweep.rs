//! Latency-tolerance study (the Figure 11 experiment as an API example):
//! sweep the CXL latency bridge from +0 to +6 µs and find the knee where
//! graph processing stops matching host DRAM.
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use cxl_gpu_graph::core::runner::sweep;
use cxl_gpu_graph::model::requirements::emogi_requirements;
use cxl_gpu_graph::prelude::*;

fn main() {
    let graph = GraphSpec::urand(15).seed(7).build();
    let bfs = Traversal::bfs(0);

    // Gen3 halves the bandwidth and Nmax (256), making the latency
    // allowance tight enough to demonstrate at small scale — the same
    // reason the paper downgraded its link (§4.2.2).
    let baseline = bfs.run(&graph, &SystemConfig::emogi_on_dram(PcieGen::Gen3));
    let base = baseline.metrics.runtime.as_secs_f64();

    let added: Vec<f64> = (0..=12).map(|i| i as f64 * 0.5).collect();
    let results = sweep(added.clone(), |us| {
        let sys = SystemConfig::emogi_on_cxl(PcieGen::Gen3, 5).with_added_latency_us(us);
        let r = bfs.run(&graph, &sys);
        (us, r.metrics.runtime.as_secs_f64() / base)
    });

    let allowance = emogi_requirements(PcieGen::Gen3).max_latency_us;
    println!("Equation 6 latency allowance (Gen3, d=89.6 B): {allowance:.2} us\n");
    println!("{:>12} {:>14}", "added [us]", "t / t_DRAM");
    for (us, ratio) in &results {
        let marker = if *ratio < 1.05 { "  <= matches DRAM" } else { "" };
        println!("{us:>12.1} {ratio:>14.2}{marker}");
    }

    // Find the knee: the largest added latency still within 5% of DRAM.
    let knee = results
        .iter()
        .filter(|(_, r)| *r < 1.05)
        .map(|(us, _)| *us)
        .fold(0.0f64, f64::max);
    println!(
        "\nKnee at +{knee:.1} us added latency — the paper's Observation 2: \
         a few microseconds of external-memory latency are tolerable."
    );
}
