//! Alignment study (Observation 1 as an API example): measure read
//! amplification and end-to-end runtime across access alignments, on all
//! three dataset families.
//!
//! ```text
//! cargo run --release --example alignment_study
//! ```

use cxl_gpu_graph::core::raf::{raf_sweep, FIG3_ALIGNMENTS};
use cxl_gpu_graph::core::traversal::bfs_trace;
use cxl_gpu_graph::prelude::*;

fn main() {
    println!("Read amplification (BFS, software-cache simulation):\n");
    print!("{:<16}", "alignment [B]");
    for a in FIG3_ALIGNMENTS {
        print!("{a:>7}");
    }
    println!();

    for spec in [
        GraphSpec::urand(14).seed(1),
        GraphSpec::kron(14).seed(1),
        GraphSpec::friendster_like(14).seed(1),
    ] {
        let g = spec.build();
        let src = g.max_degree_vertex().unwrap_or(0);
        let trace = bfs_trace(&g, src);
        let points = raf_sweep(&g, &trace, &FIG3_ALIGNMENTS, None);
        print!("{:<16}", spec.name());
        for p in &points {
            print!("{:>7.2}", p.raf);
        }
        println!();
    }

    // End-to-end effect: run XLFDD-direct BFS at three alignments.
    println!("\nEnd-to-end runtime on XLFDD (urand14, normalized to 16 B):\n");
    let g = GraphSpec::urand(14).seed(1).build();
    let bfs = Traversal::bfs(0);
    let base = bfs
        .run(&g, &SystemConfig::xlfdd(PcieGen::Gen4, 16))
        .metrics
        .runtime
        .as_secs_f64();
    println!("{:>12} {:>12} {:>8}", "align [B]", "t / t_16B", "RAF");
    for a in [16u64, 128, 512, 4096] {
        let sys = SystemConfig::xlfdd(PcieGen::Gen4, 16).with_alignment(a);
        let r = bfs.run(&g, &sys);
        println!(
            "{a:>12} {:>12.2} {:>8.2}",
            r.metrics.runtime.as_secs_f64() / base,
            r.metrics.raf()
        );
    }
    println!(
        "\nObservation 1: a smaller address alignment size is better — \
         fetched bytes (and with them runtime) grow with alignment."
    );
}
