//! Quickstart: generate a graph, run BFS against three external-memory
//! backends, and print the paper's headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cxl_gpu_graph::prelude::*;

fn main() {
    // A uniform random graph with the paper's urand degree structure
    // (average degree 32 => 256 B edge sublists) at laptop scale.
    let spec = GraphSpec::urand(15).seed(42);
    let graph = spec.build();
    println!(
        "graph {}: {} vertices, {} edges ({:.1} MB edge list)\n",
        spec.name(),
        graph.num_vertices(),
        graph.num_edges(),
        (graph.num_edges() * 8) as f64 / 1e6
    );

    let bfs = Traversal::bfs(0);

    // 1. EMOGI zero-copy on host DRAM — the baseline the paper
    //    normalizes everything against.
    let dram = bfs.run(&graph, &SystemConfig::emogi_on_dram(PcieGen::Gen4));

    // 2. The same EMOGI code on CXL memory with +1 us of added latency
    //    (the paper's Observation 2: microsecond latency is tolerable).
    let cxl = bfs.run(
        &graph,
        &SystemConfig::emogi_on_cxl(PcieGen::Gen4, 5).with_added_latency_us(1.0),
    );

    // 3. BaM-style software-cache access over NVMe SSDs at 4 kB lines
    //    (the large-alignment comparison point of Observation 1).
    let bam = bfs.run(&graph, &SystemConfig::bam_on_nvme(PcieGen::Gen4, 4));

    // 4. XLFDD: microsecond flash with 16 B alignment.
    let xlfdd = bfs.run(&graph, &SystemConfig::xlfdd(PcieGen::Gen4, 16));

    println!(
        "{:<22} {:>12} {:>10} {:>8} {:>12}",
        "backend", "runtime", "vs DRAM", "RAF", "throughput"
    );
    let base = dram.metrics.runtime.as_secs_f64();
    for r in [&dram, &cxl, &bam, &xlfdd] {
        println!(
            "{:<22} {:>9.3} ms {:>9.2}x {:>8.2} {:>7.0} MB/s",
            r.backend,
            r.metrics.runtime.as_secs_f64() * 1e3,
            r.metrics.runtime.as_secs_f64() / base,
            r.metrics.raf(),
            r.metrics.throughput_mb_per_sec(),
        );
    }

    println!(
        "\nBFS reached {} of {} vertices in {} levels.",
        dram.reached,
        graph.num_vertices(),
        dram.depth()
    );
    println!(
        "The paper's story in one table: CXL memory with ~1 us extra latency \
         matches host DRAM; small-alignment flash (XLFDD) comes close; \
         4 kB-alignment SSD access (BaM) pays the read-amplification tax."
    );
}
