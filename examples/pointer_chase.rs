//! The Appendix-B pointer-chase microbenchmark as an API example:
//! measure GPU-observed latency of each external memory, as in Figure 9.
//!
//! ```text
//! cargo run --release --example pointer_chase
//! ```

use cxl_gpu_graph::core::microbench::pointer_chase_latency;
use cxl_gpu_graph::prelude::*;

fn main() {
    const REGION: u64 = 1 << 26; // 64 MB chase region
    const HOPS: u64 = 500;

    println!("GPU-observed latency via dependent 128 B loads (Appendix B):\n");
    println!("{:<24} {:>14}", "external memory", "latency [us]");

    let configs: Vec<(String, SystemConfig)> = vec![
        (
            "DRAM (near socket)".into(),
            SystemConfig::emogi_on_dram(PcieGen::Gen4),
        ),
        (
            "DRAM (far socket)".into(),
            SystemConfig::emogi_on_dram(PcieGen::Gen4).on_far_socket(),
        ),
        (
            "CXL +0.0us".into(),
            SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1),
        ),
        (
            "CXL +1.0us".into(),
            SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1).with_added_latency_us(1.0),
        ),
        (
            "CXL +2.0us".into(),
            SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1).with_added_latency_us(2.0),
        ),
        (
            "CXL +3.0us".into(),
            SystemConfig::emogi_on_cxl(PcieGen::Gen4, 1).with_added_latency_us(3.0),
        ),
    ];

    for (label, sys) in configs {
        let r = pointer_chase_latency(&sys, REGION, HOPS, 1);
        println!("{label:<24} {:>14.2}", r.latency_us);
    }

    println!(
        "\nAs in Figure 9: the GPU sees ~1+ us to host DRAM, CXL adds \
         ~0.5 us, the far socket a little more, and the latency bridge \
         shifts the bars by its configured amount."
    );
}
